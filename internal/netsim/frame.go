package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/layers"
)

// Frame is a pooled, reference-counted frame buffer: the unit of the
// zero-allocation dataplane. A frame is created once at its origin (the
// only copy it ever suffers), its FrameView is decoded once, and from
// then on the same buffer is handed from link to node to link by
// reference — a frame traversing N bridges is parsed once and copied
// zero times.
//
// Ownership contract (DESIGN.md §3):
//
//   - Node.HandleFrame borrows the frame: it is valid only until the
//     method returns. Forwarding it with Port.SendFrame during the call
//     is always safe (the link takes its own reference).
//   - A node that keeps the frame past HandleFrame — buffering it for
//     path repair, queueing it for later — must Retain it and Release
//     it exactly once when done.
//   - Payload slices handed to host callbacks (UDP datagrams excepted,
//     which are copied) alias the buffer and follow the same rule:
//     valid during the callback only.
//
// Violating the contract does not corrupt the simulator, but a released
// buffer is recycled for a later frame, so stale reads observe that
// frame's bytes.
type Frame struct {
	refs int32
	id   uint64        // origination identity, fresh per NewFrame (not per buffer)
	live *atomic.Int64 // owning network's live-frame counter (nil for bare frames)
	data []byte        // aliases buf for wire-sized frames
	view layers.FrameView
	buf  [layers.MaxFrameLen]byte
}

// framePool recycles Frame objects (struct + inline buffer together).
// The simulation is single-goroutined, but sync.Pool keeps the arena
// GC-aware for free.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// frameSeq issues frame identities. A frame keeps its id across the whole
// zero-copy forwarding chain (every hop and every flood egress shares the
// one buffer), so the id is what lets a network-wide observer correlate
// tap events into per-frame traces — the hop-trace hook the scenario
// engine's loop-freedom checker is built on. Buffer recycling does not
// reuse ids: a recycled Frame gets a fresh one at NewFrame.
var frameSeq atomic.Uint64

// frameLive counts frames created and not yet finally released. The
// balance is the pool get/put instrumentation behind LiveFrames; atomic so
// the counter stays exact under `go test -race` even though the simulation
// itself is single-goroutined.
var frameLive atomic.Int64

// LiveFrames returns the number of pooled frames currently held somewhere
// (in flight, buffered for repair, or leaked). Tests snapshot it before a
// run and assert the delta returns to zero once the simulation drains — a
// nonzero delta after a full drain is a refcount leak.
func LiveFrames() int64 { return frameLive.Load() }

// NewFrame copies b into a pooled frame and decodes its view. The caller
// owns the returned reference and must Release it (sending is not
// releasing: Port.SendFrame takes its own reference). Frames originated
// through a Network (Port.Send, Network.NewFrame) are additionally counted
// against that network, so concurrent simulations can each balance their
// own refcounts.
func NewFrame(b []byte) *Frame { return newFrame(b, nil) }

func newFrame(b []byte, live *atomic.Int64) *Frame {
	f := framePool.Get().(*Frame)
	f.refs = 1
	f.id = frameSeq.Add(1)
	f.live = live
	frameLive.Add(1)
	if live != nil {
		live.Add(1)
	}
	if len(b) <= len(f.buf) {
		f.data = f.buf[:copy(f.buf[:], b)]
	} else {
		// Oversized frames cannot happen through the layers serializer
		// (it enforces MaxFrameLen) but raw Send callers are unchecked;
		// give them an unpooled buffer rather than a panic.
		f.data = append([]byte(nil), b...)
	}
	f.view.Decode(f.data)
	return f
}

// clone duplicates the frame into a fresh pooled buffer that keeps the
// same origination identity and an already-decoded view. This is the one
// copy a frame suffers when it crosses a shard boundary: reference counts
// are shard-local (non-atomic), so the sending shard keeps its buffer and
// the destination shard receives its own — the clone's single reference is
// owned by the in-flight delivery event (DESIGN.md §8).
func (f *Frame) clone() *Frame {
	nf := framePool.Get().(*Frame)
	nf.refs = 1
	nf.id = f.id
	nf.live = f.live
	frameLive.Add(1)
	if nf.live != nil {
		nf.live.Add(1)
	}
	if len(f.data) <= len(nf.buf) {
		nf.data = nf.buf[:copy(nf.buf[:], f.data)]
	} else {
		nf.data = append([]byte(nil), f.data...)
	}
	nf.view = f.view // flat struct: safe to copy wholesale
	return nf
}

// Bytes returns the frame contents. The slice is valid only while the
// caller holds a reference; do not mutate it.
func (f *Frame) Bytes() []byte { return f.data }

// ID returns the frame's origination identity: unique per NewFrame and
// stable across the zero-copy forwarding chain, so two tap events with the
// same id observed the same originated frame (or flood copies of it).
func (f *Frame) ID() uint64 { return f.id }

// Len returns the frame length in bytes.
func (f *Frame) Len() int { return len(f.data) }

// View returns the frame's decoded view (parsed once, at NewFrame).
func (f *Frame) View() *layers.FrameView { return &f.view }

// Retain takes an additional reference and returns f for chaining.
func (f *Frame) Retain() *Frame {
	if f.refs <= 0 {
		panic("netsim: Retain on a released frame")
	}
	f.refs++
	return f
}

// Release drops one reference; the last release recycles the buffer.
func (f *Frame) Release() {
	f.refs--
	switch {
	case f.refs > 0:
	case f.refs == 0:
		f.data = nil
		frameLive.Add(-1)
		if f.live != nil {
			f.live.Add(-1)
			f.live = nil
		}
		framePool.Put(f)
	default:
		panic(fmt.Sprintf("netsim: frame over-released (refs=%d)", f.refs))
	}
}

// Refs returns the current reference count (tests and leak checks).
func (f *Frame) Refs() int32 { return f.refs }
