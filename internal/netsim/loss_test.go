package netsim

import (
	"testing"
	"time"
)

// TestSetLossIsUnidirectional degrades only the A→B direction and checks
// B→A traffic is untouched while A→B loses roughly the configured share.
func TestSetLossIsUnidirectional(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(time.Microsecond))

	var lossTaps int
	net.Tap(func(ev TapEvent) {
		if ev.Kind == TapDropLoss {
			lossTaps++
			if ev.FrameID != 0 {
				t.Error("origination-path loss drop carried a frame id")
			}
		}
	})

	const n = 1000
	net.Engine.At(0, func() {
		l.SetLoss(l.A(), 0.5)
		for i := 0; i < n; i++ {
			l.A().Send(make([]byte, 100))
			l.B().Send(make([]byte, 100))
		}
	})
	net.Run()

	if got := len(a.frames); got != n {
		t.Fatalf("B→A direction lost frames: %d of %d arrived", got, n)
	}
	lost := n - len(b.frames)
	if lost < n/4 || lost > 3*n/4 {
		t.Fatalf("A→B lost %d of %d at rate 0.5", lost, n)
	}
	if st := l.A().Stats(); st.DropsLoss != uint64(lost) {
		t.Fatalf("DropsLoss=%d, want %d", st.DropsLoss, lost)
	}
	if lossTaps != lost {
		t.Fatalf("%d TapDropLoss events for %d losses", lossTaps, lost)
	}
}

// TestSetLossClearedRestoresDelivery clears a lossy direction and checks
// delivery returns to 100%.
func TestSetLossClearedRestoresDelivery(t *testing.T) {
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(time.Microsecond))
	net.Engine.At(0, func() { l.SetLoss(l.A(), 1) })
	net.Engine.At(0, func() { l.A().Send(make([]byte, 64)) })
	net.Engine.At(time.Millisecond, func() {
		if l.Loss(l.A()) != 1 {
			t.Error("loss rate not readable")
		}
		l.SetLoss(l.A(), 0)
	})
	net.Engine.At(2*time.Millisecond, func() { l.A().Send(make([]byte, 64)) })
	net.Run()
	if len(b.frames) != 1 {
		t.Fatalf("got %d frames, want exactly the post-clear one", len(b.frames))
	}
}

// TestSetLossDeterministic pins the seed → drop pattern mapping: two
// identical runs lose exactly the same frames.
func TestSetLossDeterministic(t *testing.T) {
	run := func() []int {
		net := NewNetwork(42)
		a, b := newTestNode("a"), newTestNode("b")
		l := net.Connect(a, b, gigabit(time.Microsecond))
		_ = a
		net.Engine.At(0, func() {
			l.SetLoss(l.A(), 0.3)
			for i := 0; i < 200; i++ {
				l.A().Send([]byte{byte(i), byte(i >> 8), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
			}
		})
		net.Run()
		var got []int
		for _, r := range b.frames {
			got = append(got, int(r.frame[0])|int(r.frame[1])<<8)
		}
		return got
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("runs delivered %d vs %d frames", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("delivery %d diverged: frame %d vs %d", i, x[i], y[i])
		}
	}
}

// forwarder is a node that forwards every received frame out one port,
// zero-copy, like a one-armed bridge.
type forwarder struct {
	name  string
	out   *Port
	ports []*Port
}

func (f *forwarder) Name() string                      { return f.name }
func (f *forwarder) AttachPort(p *Port)                { f.ports = append(f.ports, p) }
func (f *forwarder) HandleFrame(_ *Port, fr *Frame)    { f.out.SendFrame(fr) }
func (f *forwarder) PortStatusChanged(_ *Port, _ bool) {}

// TestFrameIDStableAcrossHops checks the hop-trace identity: the id
// assigned at origination is visible unchanged at every tap event of a
// two-hop zero-copy forwarding chain, and distinct originations get
// distinct ids.
func TestFrameIDStableAcrossHops(t *testing.T) {
	net := NewNetwork(1)
	a, c := newTestNode("a"), newTestNode("c")
	mid := &forwarder{name: "mid"}
	ab := net.Connect(a, mid, gigabit(time.Microsecond))
	bc := net.Connect(mid, c, gigabit(time.Microsecond))
	mid.out = bc.A()

	ids := make(map[uint64][]TapKind)
	net.Tap(func(ev TapEvent) {
		if ev.FrameID == 0 {
			t.Error("tap event with zero frame id")
		}
		ids[ev.FrameID] = append(ids[ev.FrameID], ev.Kind)
	})
	net.Engine.At(0, func() {
		ab.A().Send(make([]byte, 64))
		ab.A().Send(make([]byte, 64))
	})
	net.Run()
	if len(ids) != 2 {
		t.Fatalf("2 originations produced %d distinct frame ids", len(ids))
	}
	want := []TapKind{TapSend, TapDeliver, TapSend, TapDeliver}
	for id, kinds := range ids {
		if len(kinds) != len(want) {
			t.Fatalf("frame %d saw %v, want %v", id, kinds, want)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("frame %d saw %v, want %v", id, kinds, want)
			}
		}
	}
	if len(c.frames) != 2 {
		t.Fatalf("far node received %d frames, want 2", len(c.frames))
	}
}

// TestLiveFramesBalance checks the get/put instrumentation: live count
// rises while frames are held and returns to baseline after release.
func TestLiveFramesBalance(t *testing.T) {
	base := LiveFrames()
	f := NewFrame(make([]byte, 64))
	if got := LiveFrames(); got != base+1 {
		t.Fatalf("after NewFrame: live=%d, want %d", got, base+1)
	}
	f.Retain()
	f.Release()
	if got := LiveFrames(); got != base+1 {
		t.Fatalf("after Retain+Release: live=%d, want %d", got, base+1)
	}
	f.Release()
	if got := LiveFrames(); got != base {
		t.Fatalf("after final Release: live=%d, want %d", got, base)
	}

	// A full simulated exchange drains back to baseline too.
	net := NewNetwork(1)
	a, b := newTestNode("a"), newTestNode("b")
	l := net.Connect(a, b, gigabit(time.Microsecond))
	net.Engine.At(0, func() {
		for i := 0; i < 50; i++ {
			l.A().Send(make([]byte, 200))
		}
	})
	net.Run()
	if got := LiveFrames(); got != base {
		t.Fatalf("after drained run: live=%d, want %d", got, base)
	}
}
