package netsim

// TapFingerprint folds every tap event into a running FNV-1a digest with
// frame identities normalized to first-seen order. It is THE trace
// fingerprint of the repository — the scenario checker, the scaling
// experiment and the shard determinism tests all share this one
// construction, so their digests are comparable and a change to what a
// fingerprint covers happens in exactly one place. Two runs of the same
// seed must produce equal digests regardless of shard count, GOMAXPROCS,
// or what ran earlier in the process (the normalization removes the
// process-global frame counter).
type TapFingerprint struct {
	fp     uint64
	events uint64
	ids    map[uint64]uint32
}

// NewTapFingerprint returns an empty fingerprint; feed it with Observe
// (typically by registering it as a tap: n.Tap(f.Observe)).
func NewTapFingerprint() *TapFingerprint {
	return &TapFingerprint{ids: make(map[uint64]uint32)}
}

// NormID normalizes a frame identity to its first-seen index.
func (t *TapFingerprint) NormID(id uint64) uint32 {
	if n, ok := t.ids[id]; ok {
		return n
	}
	n := uint32(len(t.ids)) + 1
	t.ids[id] = n
	return n
}

// Observe folds one tap event into the digest.
func (t *TapFingerprint) Observe(ev TapEvent) {
	t.fold(uint64(ev.At), uint64(ev.Kind), uint64(t.NormID(ev.FrameID)), uint64(len(ev.Frame)))
	t.foldString(ev.From.String())
	t.foldString(ev.To.String())
	t.events++
}

// Sum returns the digest over everything observed so far.
func (t *TapFingerprint) Sum() uint64 { return t.fp }

// Events returns the number of tap events folded in.
func (t *TapFingerprint) Events() uint64 { return t.events }

// fold mixes integers into the FNV-1a state.
func (t *TapFingerprint) fold(vs ...uint64) {
	h := t.fp
	if h == 0 {
		h = 14695981039346656037 // FNV-1a offset basis
	}
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	t.fp = h
}

// foldString folds FNV-1a(s) into the digest. The hash is computed inline
// straight off the string — same value hash/fnv produces, without the
// hasher and []byte conversion allocations the stdlib route costs per
// event on a tapped run.
func (t *TapFingerprint) foldString(s string) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	t.fold(h)
}
