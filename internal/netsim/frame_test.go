package netsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/layers"
)

func testFrameBytes(dst, src layers.MAC, tag byte) []byte {
	f, err := layers.Serialize(
		&layers.Ethernet{Dst: dst, Src: src, EtherType: layers.EtherTypeIPv4},
		layers.Payload([]byte{tag}),
	)
	if err != nil {
		panic(err)
	}
	return f
}

func TestFrameCopiesAndDecodesOnce(t *testing.T) {
	src, dst := layers.HostMAC(1), layers.HostMAC(2)
	raw := testFrameBytes(dst, src, 0xAB)
	f := NewFrame(raw)
	defer f.Release()
	if !bytes.Equal(f.Bytes(), raw) {
		t.Fatal("frame bytes differ from input")
	}
	// The caller's slice is independent after NewFrame.
	raw[0] ^= 0xFF
	if bytes.Equal(f.Bytes()[:1], raw[:1]) {
		t.Fatal("frame aliases the caller's slice")
	}
	v := f.View()
	if !v.OK || v.Src != src || v.Dst != dst || v.EtherType != layers.EtherTypeIPv4 {
		t.Fatalf("view = %+v", v)
	}
	if v.SrcKey != src.Uint64() || v.DstKey != dst.Uint64() {
		t.Fatal("packed keys wrong")
	}
}

func TestFrameRefcount(t *testing.T) {
	f := NewFrame(testFrameBytes(layers.HostMAC(2), layers.HostMAC(1), 1))
	if f.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", f.Refs())
	}
	if f.Retain() != f {
		t.Fatal("Retain must return the frame")
	}
	if f.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", f.Refs())
	}
	f.Release()
	if f.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", f.Refs())
	}
	f.Release()

	// Over-release and use-after-release must panic loudly.
	mustPanic(t, func() { f.Release() })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestFrameOversizedFallsBack(t *testing.T) {
	big := make([]byte, layers.MaxFrameLen+100)
	big[0] = 0x02
	f := NewFrame(big)
	if f.Len() != len(big) {
		t.Fatalf("len = %d, want %d", f.Len(), len(big))
	}
	f.Release()
}

// TestBorrowedFrameBufferIsRecycled documents the ownership contract: a
// node that stores the raw slice without Retain observes the next
// frame's bytes, while a Retained frame stays intact.
func TestBorrowedFrameBufferIsRecycled(t *testing.T) {
	net := NewNetwork(1)
	a := newTestNode("a")
	var stolen []byte // aliased without Retain, on purpose
	var kept *Frame
	bNode := &retainNode{name: "r"}
	l := net.Connect(a, bNode, gigabit(0))
	first := testFrameBytes(layers.HostMAC(2), layers.HostMAC(1), 0x11)
	second := testFrameBytes(layers.HostMAC(2), layers.HostMAC(1), 0x22)
	bNode.hook = func(f *Frame) {
		if stolen == nil {
			stolen = f.Bytes() // contract violation: no Retain
			kept = f.Retain()  // contract-following sibling reference
		}
	}
	net.Engine.At(0, func() { l.A().Send(first) })
	net.Engine.At(time.Millisecond, func() { l.A().Send(second) })
	net.Run()
	if kept == nil {
		t.Fatal("no frame delivered")
	}
	// The retained frame still holds the first payload...
	if got := kept.Bytes()[layers.EthernetHeaderLen]; got != 0x11 {
		t.Fatalf("retained frame corrupted: payload byte %#x", got)
	}
	// ...while the stolen alias sees whatever the pool reused the buffer
	// for. We can't assert which frame owns it now — only that the
	// retained copy was protected; releasing it returns it to the pool.
	_ = stolen
	kept.Release()
}

// retainNode exposes a hook that receives the borrowed *Frame.
type retainNode struct {
	name  string
	ports []*Port
	hook  func(*Frame)
}

func (r *retainNode) Name() string                      { return r.name }
func (r *retainNode) AttachPort(p *Port)                { r.ports = append(r.ports, p) }
func (r *retainNode) PortStatusChanged(_ *Port, _ bool) {}
func (r *retainNode) HandleFrame(_ *Port, f *Frame) {
	if r.hook != nil {
		r.hook(f)
	}
}

// TestSendFrameSharesOneBuffer floods one frame out two ports of a relay
// and checks both deliveries observed identical bytes while TxBytes
// accounted both transmissions (zero-copy fan-out).
func TestSendFrameSharesOneBuffer(t *testing.T) {
	net := NewNetwork(1)
	relay := &relayNode{testNode{name: "relay"}}
	a, b, c := newTestNode("a"), newTestNode("b"), newTestNode("c")
	la := net.Connect(a, relay, gigabit(0))
	net.Connect(relay, b, gigabit(0))
	net.Connect(relay, c, gigabit(0))
	frame := testFrameBytes(layers.BroadcastMAC, layers.HostMAC(1), 0x5A)
	net.Engine.At(0, func() { la.A().Send(frame) })
	net.Run()
	if len(b.frames) != 1 || len(c.frames) != 1 {
		t.Fatalf("deliveries: b=%d c=%d", len(b.frames), len(c.frames))
	}
	if !bytes.Equal(b.frames[0].frame, frame) || !bytes.Equal(c.frames[0].frame, frame) {
		t.Fatal("fan-out corrupted the frame")
	}
}
