// Package netsim models the physical network of the demo: nodes (bridges
// and hosts) joined by full-duplex Ethernet links with finite bit rate,
// propagation delay and bounded output queues, plus link failure injection
// and frame taps for tracing.
//
// It is the repository's substitute for the paper's NetFPGA testbed (see
// DESIGN.md): serialization delay uses the exact Ethernet wire overhead
// (preamble, FCS, inter-frame gap) so a 1 Gb/s simulated link paces frames
// like the hardware MACs, and the flooded-copy races that ARP-Path depends
// on are decided by arrival times computed from these models.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/layers"
	"repro/internal/sim"
)

// Node is anything that terminates links: a bridge or a host. All methods
// are invoked from the simulation goroutine.
type Node interface {
	// Name returns the node's unique display name.
	Name() string
	// AttachPort is called once per port when the node is cabled.
	AttachPort(p *Port)
	// HandleFrame delivers a received frame. The frame is borrowed: it
	// is valid only until the method returns. Forwarding it onward with
	// Port.SendFrame during the call is safe; keeping it longer requires
	// an explicit Retain (and a matching Release). See Frame.
	HandleFrame(p *Port, f *Frame)
	// PortStatusChanged reports link up/down transitions on p.
	PortStatusChanged(p *Port, up bool)
}

// LinkConfig describes one link's physical properties. Both directions
// share the configuration.
type LinkConfig struct {
	// Rate is the line rate in bits per second.
	Rate int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Queue is the per-direction output queue capacity in bytes. Frames
	// that would overflow it are tail-dropped.
	Queue int
}

// DefaultLinkConfig matches the demo hardware: 1 Gb/s, a short wire, and a
// NetFPGA-sized output queue.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{Rate: 1_000_000_000, Delay: 5 * time.Microsecond, Queue: 128 << 10}
}

// WithDelay returns a copy of c with the propagation delay replaced.
func (c LinkConfig) WithDelay(d time.Duration) LinkConfig {
	c.Delay = d
	return c
}

// TapKind classifies tap events.
type TapKind uint8

// Tap event kinds.
const (
	// TapSend fires when a frame is accepted into a link's output queue.
	TapSend TapKind = iota
	// TapDeliver fires when a frame reaches the far port's node.
	TapDeliver
	// TapDropQueue fires when a frame is tail-dropped at a full queue.
	TapDropQueue
	// TapDropDown fires when a frame is discarded because the link is (or
	// went) down.
	TapDropDown
	// TapDropLoss fires when a frame is discarded by a configured
	// unidirectional loss rate (a degraded cable, Link.SetLoss).
	TapDropLoss
)

// String names the kind.
func (k TapKind) String() string {
	switch k {
	case TapSend:
		return "send"
	case TapDeliver:
		return "deliver"
	case TapDropQueue:
		return "drop-queue"
	case TapDropDown:
		return "drop-down"
	case TapDropLoss:
		return "drop-loss"
	default:
		return "tap(?)"
	}
}

// TapEvent is a single observation of a frame at a link.
type TapEvent struct {
	At   time.Duration
	Kind TapKind
	From *Port
	To   *Port
	// Frame aliases the pooled frame buffer: read it during the tap
	// call only, do not mutate, and copy if the bytes must outlive it.
	Frame []byte
	// FrameID is the pooled frame's origination identity (Frame.ID):
	// stable across every hop and flood egress of one originated frame,
	// which is what lets a tap correlate events into per-frame hop traces.
	// Zero on origination-side drops that happen before a pooled frame
	// exists (a down link or full queue rejecting Port.Send).
	FrameID uint64
}

// TapFunc observes frames network-wide.
type TapFunc func(TapEvent)

// Network owns the simulation engine(s), the nodes and the links.
//
// A network starts single-engine. Partition splits it into shards — one
// engine per shard, one worker per engine — synchronized by a conservative
// lookahead coordinator (DESIGN.md §8). Engine remains the control engine:
// driver code (experiments, fault schedules) keeps scheduling on it, and in
// a sharded run those root events execute at barriers with every shard
// paused and lined up on the same virtual instant.
type Network struct {
	Engine *sim.Engine

	seed   int64
	nodes  []Node
	byNam  map[string]Node
	nports map[Node]int
	links  []*Link
	taps   []TapFunc
	procs  map[string]*sim.Proc
	owners uint64 // scheduling-identity allocator; id 0 is the root driver
	live   atomic.Int64

	co *coordinator // non-nil once Partition sharded the fabric
}

// NewNetwork creates an empty network with a deterministic engine.
func NewNetwork(seed int64) *Network {
	return &Network{
		Engine: sim.New(seed),
		seed:   seed,
		byNam:  make(map[string]Node),
		nports: make(map[Node]int),
		procs:  make(map[string]*sim.Proc),
	}
}

// Seed returns the seed the network was created with.
func (n *Network) Seed() int64 { return n.seed }

// AddNode registers a node and mints its scheduling identity. Connect
// registers implicitly; explicit registration is only needed for nodes
// created before any cabling.
func (n *Network) AddNode(node Node) {
	if _, dup := n.byNam[node.Name()]; dup {
		panic(fmt.Sprintf("netsim: duplicate node name %q", node.Name()))
	}
	n.byNam[node.Name()] = node
	n.nodes = append(n.nodes, node)
	n.owners++
	n.procs[node.Name()] = sim.NewProc(n.Engine, n.owners)
}

// Proc returns the scheduling identity of the named node: the handle its
// code must use for every timer and event it creates, so the event order
// stays independent of how the fabric is sharded. It panics for unknown
// names (identities are minted at registration).
func (n *Network) Proc(name string) *sim.Proc {
	p, ok := n.procs[name]
	if !ok {
		panic(fmt.Sprintf("netsim: no scheduling identity for node %q", name))
	}
	return p
}

// NewFrame copies b into a pooled frame counted against this network's
// live-frame balance (see LiveFrames).
func (n *Network) NewFrame(b []byte) *Frame { return newFrame(b, &n.live) }

// LiveFrames returns the number of this network's pooled frames currently
// referenced anywhere. Unlike the package-level LiveFrames it is immune to
// other simulations running concurrently in the same process.
func (n *Network) LiveFrames() int64 { return n.live.Load() }

// Nodes returns the registered nodes in registration order.
func (n *Network) Nodes() []Node { return n.nodes }

// NodeByName looks a node up, returning nil if absent.
func (n *Network) NodeByName(name string) Node { return n.byNam[name] }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Tap registers fn to observe every frame event in the network.
func (n *Network) Tap(fn TapFunc) { n.taps = append(n.taps, fn) }

// tracing reports whether any tap is installed. The frame hot path guards
// every emit call behind it so an untapped run never pays for assembling
// the TapEvent (the dominant configuration for benchmarks: the check is
// one load+branch per frame event instead of a struct fill).
func (n *Network) tracing() bool { return len(n.taps) > 0 }

// emit reports a tap event observed while engine e was executing. During
// a parallel window the event is buffered per shard (bytes copied into a
// per-shard arena, stamped with the executing event's ordering key) and
// delivered later by the coordinator's deterministic merge. Everywhere
// else — unsharded runs, barrier events, driver code between runs — it is
// delivered inline: those contexts are single-threaded with every earlier
// window tap already flushed, so inline program order is exactly the order
// the unsharded run would have emitted.
func (n *Network) emit(e *sim.Engine, ev TapEvent) {
	if len(n.taps) == 0 {
		return
	}
	if n.co != nil && n.co.inWindow {
		n.co.buffer(e, ev)
		return
	}
	for _, t := range n.taps {
		t(ev)
	}
}

// Connect cables nodes a and b with a new full-duplex link, assigning each
// side the node's next free port index. Nodes are registered on first use.
func (n *Network) Connect(a, b Node, cfg LinkConfig) *Link {
	if cfg.Rate <= 0 {
		panic("netsim: link rate must be positive")
	}
	if cfg.Queue <= 0 {
		panic("netsim: link queue must be positive")
	}
	if cfg.Delay < 0 {
		panic("netsim: negative propagation delay")
	}
	for _, node := range []Node{a, b} {
		if _, ok := n.byNam[node.Name()]; !ok {
			n.AddNode(node)
		}
	}
	l := &Link{net: n, cfg: cfg, up: true, idx: len(n.links)}
	ia := n.nports[a]
	n.nports[a]++
	ib := n.nports[b] // after a's increment so self-loops get distinct indices
	n.nports[b]++
	l.ports[0] = &Port{node: a, index: ia, link: l, side: 0}
	l.ports[1] = &Port{node: b, index: ib, link: l, side: 1}
	l.ports[0].str = fmt.Sprintf("%s[%d]", a.Name(), ia)
	l.ports[1].str = fmt.Sprintf("%s[%d]", b.Name(), ib)
	// Each direction transmits under its own identity: flight events are
	// keyed by (link direction, per-direction sequence), both functions of
	// the sending side's deterministic history alone, so delivery order is
	// the same whether the link is intra-shard or a shard boundary.
	n.owners++
	l.proc[0] = sim.NewProc(n.Engine, n.owners)
	n.owners++
	l.proc[1] = sim.NewProc(n.Engine, n.owners)
	n.links = append(n.links, l)
	a.AttachPort(l.ports[0])
	b.AttachPort(l.ports[1])
	return l
}

// Run drains the event queue(s) to full quiescence.
func (n *Network) Run() {
	if n.co != nil {
		n.co.run(0, false)
		return
	}
	n.Engine.Run()
}

// RunFor advances virtual time by d.
func (n *Network) RunFor(d time.Duration) { n.RunUntil(n.Now() + d) }

// RunUntil advances virtual time to t.
func (n *Network) RunUntil(t time.Duration) {
	if n.co != nil {
		n.co.run(t, true)
		return
	}
	n.Engine.RunUntil(t)
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.Engine.Now() }

// Quiescent reports whether nothing is scheduled anywhere: no control
// engine events, and in a sharded fabric no shard events either (between
// runs the coordinator's outboxes are drained by invariant, so pending
// counts are the whole story). Call from driver context only — between
// runs or inside a barrier event. A long-running driver uses this to park
// instead of spinning bounded runs against an idle fabric: once quiescent,
// virtual time only moves again when the driver schedules new work.
func (n *Network) Quiescent() bool {
	if n.Engine.Pending() > 0 {
		return false
	}
	if n.co != nil {
		for _, e := range n.co.shards {
			if e.Pending() > 0 {
				return false
			}
		}
	}
	return true
}

// ScheduleLinkDown fails l at time t.
func (n *Network) ScheduleLinkDown(t time.Duration, l *Link) {
	n.Engine.At(t, func() { l.SetUp(false) })
}

// ScheduleLinkUp restores l at time t.
func (n *Network) ScheduleLinkUp(t time.Duration, l *Link) {
	n.Engine.At(t, func() { l.SetUp(true) })
}

// ScheduleScoped schedules fn at absolute virtual time t under owner's
// scheduling identity, for an action that touches only the state of the
// nodes in touch (owner included). The event's ordering key is a function
// of owner's own history — partition-independent, like every other key —
// but its venue is chosen by the partition: when every touched node lives
// in owner's shard the event executes inside that shard's parallel
// windows; when the action spans shards it executes on the control engine
// as a coordinator barrier, with every shard paused and clocks aligned.
// Fault injection uses this to keep intra-shard faults off the barrier
// path: the trace is byte-identical either way, only the synchronization
// cost differs. Call from driver code only (between runs or inside a
// barrier event): the cross-shard branch schedules on the control
// engine, which shard workers must never touch mid-window.
func (n *Network) ScheduleScoped(t time.Duration, owner Node, touch []Node, fn func()) {
	p := n.Proc(owner.Name())
	oseq := p.NextSeq()
	if n.co == nil {
		n.Engine.ScheduleKeyedFunc(t, p.ID(), oseq, fn)
		return
	}
	home := n.co.shardOf[owner]
	for _, nd := range touch {
		if n.co.shardOf[nd] != home {
			// Spans shards: a barrier, but keyed exactly like the
			// shard-local venue would have keyed it.
			n.Engine.ScheduleKeyedFunc(t, p.ID(), oseq, fn)
			return
		}
	}
	n.co.shards[home].ScheduleKeyedFunc(t, p.ID(), oseq, fn)
}

// Barriers returns how many control-engine events have executed as
// coordinator barriers (all shards paused) since the fabric was
// partitioned; 0 on an unsharded network. Barriers are the serial section
// of a sharded run, so the scenario engine's shard-local fault routing is
// pinned by this counter going down.
func (n *Network) Barriers() uint64 {
	if n.co == nil {
		return 0
	}
	return n.co.barriers
}

// CoordStats returns the coordinator's cumulative overhead counters —
// windows dispatched, barriers, cross-shard arrivals exchanged, worker
// wake-ups and total wake latency. Zero-valued on an unsharded network.
// Windows/Barriers/Exchanged are deterministic for a given workload and
// shard count; WakeNS is wall clock. Call it between runs only.
func (n *Network) CoordStats() CoordStats {
	if n.co == nil {
		return CoordStats{}
	}
	s := CoordStats{Windows: n.co.windows, Barriers: n.co.barriers}
	for i := range n.co.wstats {
		w := &n.co.wstats[i]
		s.Exchanged += w.exchanged
		s.Wakes += w.wakes
		s.WakeNS += w.wakeNS
	}
	return s
}

// PortStats counts traffic through one port.
type PortStats struct {
	TxFrames, TxBytes uint64
	RxFrames, RxBytes uint64
	DropsQueue        uint64 // frames tail-dropped on egress
	DropsDown         uint64 // frames lost to a down link
	DropsLoss         uint64 // frames lost to unidirectional degradation
}

// Port is one end of a link, owned by a node.
type Port struct {
	node  Node
	index int
	link  *Link
	side  int
	str   string // cached String(): node name and index are fixed at cabling
	stats PortStats
}

// Node returns the owning node.
func (p *Port) Node() Node { return p.node }

// Index returns the port's index within its node (0-based, cabling order).
func (p *Port) Index() int { return p.index }

// Link returns the attached link.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.link.ports[1-p.side] }

// Up reports whether the attached link is up.
func (p *Port) Up() bool { return p.link.up }

// Stats returns a snapshot of the port's counters. Call it while the
// simulation is paused; DropsDown is the one counter a remote shard may
// touch (an in-flight frame killed at the far side of a boundary link), so
// it is re-read atomically.
func (p *Port) Stats() PortStats {
	s := p.stats
	s.DropsDown = atomic.LoadUint64(&p.stats.DropsDown)
	return s
}

// String renders "node[index]".
func (p *Port) String() string {
	if p.str != "" {
		return p.str
	}
	return fmt.Sprintf("%s[%d]", p.node.Name(), p.index)
}

// Send copies frame into a pooled buffer and transmits it out this port;
// the caller may reuse its slice. This is the origination path (hosts,
// control-frame serializers) and costs the frame's one and only copy.
// Bridges forwarding a received *Frame use SendFrame, which is zero-copy.
// Down links and full queues drop (with taps fired and counters bumped)
// exactly like a real egress MAC — and before the copy, so dropped
// originations stay as cheap as they were pre-pooling.
func (p *Port) Send(frame []byte) {
	if !p.link.admit(p, frame, 0) {
		return
	}
	f := p.link.net.NewFrame(frame)
	p.link.transmit(p, f)
	f.Release()
}

// SendFrame transmits f out this port without copying. The link takes its
// own reference for the flight; the caller's reference is untouched, so
// forwarding a borrowed frame from inside HandleFrame needs no Retain.
//
//fabric:hotpath
func (p *Port) SendFrame(f *Frame) {
	if !p.link.admit(p, f.Bytes(), f.id) {
		return
	}
	p.link.transmit(p, f)
}

// linkDir is the per-direction transmission state of a link. It is owned
// by the shard of the transmitting node: only sender-side events touch it.
type linkDir struct {
	busyUntil   time.Duration // when the serializer frees up
	queuedBytes int           // wire bytes accepted but not yet serialized
	busyTotal   time.Duration // cumulative serialization time (utilization)
	lossRate    float64       // probability a frame this direction is lost
	rng         *rand.Rand    // per-direction loss draws, seeded from (net seed, link, side)
}

// Link is a full-duplex point-to-point Ethernet link.
type Link struct {
	net   *Network
	cfg   LinkConfig
	ports [2]*Port
	proc  [2]*sim.Proc // per-direction transmit identity (side = sender)
	shard [2]int       // shard of each side's node (set by Partition)
	dir   [2]linkDir
	idx   int // creation order; seeds the per-direction loss RNGs
	up    bool
	epoch uint64 // bumped on every up/down transition; kills in-flight frames
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Up reports whether the link is up.
func (l *Link) Up() bool { return l.up }

// A returns the first-cabled port, B the second.
func (l *Link) A() *Port { return l.ports[0] }

// B returns the second-cabled port.
func (l *Link) B() *Port { return l.ports[1] }

// Ports returns both ends, A first.
func (l *Link) Ports() [2]*Port { return l.ports }

// String renders "a[i]<->b[j]".
func (l *Link) String() string {
	return fmt.Sprintf("%s<->%s", l.ports[0], l.ports[1])
}

// BusyTime returns the cumulative serialization time in the direction away
// from p, the basis of the load-distribution experiment's utilization.
func (l *Link) BusyTime(p *Port) time.Duration {
	return l.dir[p.side].busyTotal
}

// SetLoss degrades the direction transmitting away from port from: each
// admitted frame is independently lost with probability rate (drawn from
// the deterministic engine RNG, so a seed fully determines which frames
// die). rate 0 restores the direction; the opposite direction is
// untouched, which is what models a unidirectionally failing cable — the
// wARP-Path-style impairment a clean up/down flap cannot express. Must be
// called from the simulation goroutine, like SetUp.
func (l *Link) SetLoss(from *Port, rate float64) {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("netsim: loss rate %v out of [0,1]", rate))
	}
	d := &l.dir[from.side]
	d.lossRate = rate
	if rate > 0 && d.rng == nil {
		// A direction draws losses from its own stream, seeded by the
		// network seed and the direction's identity. The k-th admitted
		// frame on this direction sees the same draw however the fabric is
		// sharded — a shared engine RNG consumed in execution order would
		// not survive repartitioning.
		// Domain-separated from the other per-entity streams (bridges use
		// 0x5851F42D4C957F2D, hosts 0x2545F4914F6CDD1D): without a
		// distinct multiplier a low-numbered bridge and a low-indexed link
		// direction would draw byte-identical streams.
		d.rng = rand.New(rand.NewSource(l.net.seed ^ (int64(l.idx*2+from.side)+1)*0x6A09E667F3BCC909))
	}
}

// Loss returns the loss rate in the direction transmitting away from from.
func (l *Link) Loss(from *Port) float64 { return l.dir[from.side].lossRate }

// SetUp changes the link state, purging queued traffic on a down
// transition and notifying both nodes. Must be called from the simulation
// goroutine (inside an event, or via Network.ScheduleLink{Down,Up}). In a
// sharded run the link's state is read by both sides' shards, so SetUp is
// legal from root/driver context (a fault op or phase boundary executing
// as a coordinator barrier with every shard paused) — or, when both ends
// live in one shard, from an event of that shard (ScheduleScoped's
// shard-local fault venue).
func (l *Link) SetUp(up bool) {
	if l.up == up {
		return
	}
	l.up = up
	l.epoch++
	// The transmitting sides' clock: equals the control clock at barriers
	// and in driver code, and the owning shard's clock for a shard-local
	// intra-shard fault (where the control clock is parked at the last
	// barrier).
	now := l.proc[0].Engine().Now()
	for i := range l.dir {
		l.dir[i].busyUntil = now
		l.dir[i].queuedBytes = 0
	}
	for _, p := range l.ports {
		p.node.PortStatusChanged(p, up)
	}
}

// flight is one frame in transit over a link: the pooled state behind the
// two events every transmission schedules (serializer-free at txDone,
// delivery at arrival). Flights implement sim.Runner so scheduling them
// allocates nothing, which together with the pooled Frame makes the
// steady-state forwarding path allocation-free.
type flight struct {
	eng   *sim.Engine // the shard engine executing this flight's events
	link  *Link
	from  *Port
	frame *Frame // nil when the arrival was shipped to another shard
	epoch uint64
	wire  int
}

// flight RunEvent stages.
const (
	flightTxDone  = 0 // serializer freed: drain the queue accounting
	flightArrival = 1 // frame reached the far port: deliver and clean up
)

var flightPool = sync.Pool{New: func() any { return new(flight) }}

// RunEvent implements sim.Runner. The txDone event always fires before
// the arrival event (it is scheduled first at an earlier-or-equal time),
// so the flight can be recycled once arrival runs — or at txDone when the
// arrival was shipped across a shard boundary and no local arrival exists.
//
//fabric:hotpath
func (fl *flight) RunEvent(arg int32) {
	l := fl.link
	if arg == flightTxDone {
		if l.epoch == fl.epoch {
			l.dir[fl.from.side].queuedBytes -= fl.wire
		}
		if fl.frame == nil {
			*fl = flight{}
			flightPool.Put(fl)
		}
		return
	}
	e := fl.eng
	from, f, epoch := fl.from, fl.frame, fl.epoch
	to := from.Peer()
	// Recycle before delivering so a forwarding chain reuses this flight
	// for the next hop's transmission within the same event.
	*fl = flight{}
	flightPool.Put(fl)
	deliver(e, l, from, to, f, epoch)
}

// deliver is the shared arrival tail of local flights and cross-shard
// remote flights: epoch check, stats, tap, handoff to the node.
//
//fabric:hotpath
func deliver(e *sim.Engine, l *Link, from, to *Port, f *Frame, epoch uint64) {
	if l.epoch != epoch || !l.up {
		// The frame was in flight when the link flapped. On a boundary
		// link this runs in the receiver's shard while the sender owns the
		// rest of the port counters, hence the atomic.
		atomic.AddUint64(&from.stats.DropsDown, 1)
		if l.net.tracing() {
			l.net.emit(e, TapEvent{At: e.Now(), Kind: TapDropDown, From: from, To: to, Frame: f.Bytes(), FrameID: f.id})
		}
		f.Release()
		return
	}
	to.stats.RxFrames++
	to.stats.RxBytes += uint64(f.Len())
	if l.net.tracing() {
		l.net.emit(e, TapEvent{At: e.Now(), Kind: TapDeliver, From: from, To: to, Frame: f.Bytes(), FrameID: f.id})
	}
	to.node.HandleFrame(to, f)
	f.Release()
}

// remoteFlight is a cross-shard arrival: materialized by the coordinator's
// exchange in the destination shard, carrying that shard's own clone of
// the frame. Its ordering key was stamped by the sending link direction,
// so it sorts exactly where the local arrival would have.
type remoteFlight struct {
	eng   *sim.Engine
	link  *Link
	from  *Port
	frame *Frame
	epoch uint64
}

var remoteFlightPool = sync.Pool{New: func() any { return new(remoteFlight) }}

// RunEvent implements sim.Runner.
//
//fabric:hotpath
func (rf *remoteFlight) RunEvent(int32) {
	e, l, from, f, epoch := rf.eng, rf.link, rf.from, rf.frame, rf.epoch
	*rf = remoteFlight{}
	remoteFlightPool.Put(rf)
	deliver(e, l, from, from.Peer(), f, epoch)
}

// admit runs the egress drop checks (link down, queue overflow, lossy
// direction) on the raw bytes, emitting drop taps and bumping counters.
// Running before any frame is materialized keeps the drop path copy- and
// allocation-free. id is the pooled frame's identity when one exists
// (SendFrame), zero on the origination path (Send) where the frame has
// not been materialized yet.
//
//fabric:hotpath
func (l *Link) admit(from *Port, frame []byte, id uint64) bool {
	e := l.proc[from.side].Engine()
	now := e.Now()
	if !l.up {
		atomic.AddUint64(&from.stats.DropsDown, 1)
		if l.net.tracing() {
			l.net.emit(e, TapEvent{At: now, Kind: TapDropDown, From: from, To: from.Peer(), Frame: frame, FrameID: id})
		}
		return false
	}
	d := &l.dir[from.side]
	if d.lossRate > 0 && d.rng.Float64() < d.lossRate {
		from.stats.DropsLoss++
		if l.net.tracing() {
			l.net.emit(e, TapEvent{At: now, Kind: TapDropLoss, From: from, To: from.Peer(), Frame: frame, FrameID: id})
		}
		return false
	}
	if d.queuedBytes+layers.WireBytes(len(frame)) > l.cfg.Queue {
		from.stats.DropsQueue++
		if l.net.tracing() {
			l.net.emit(e, TapEvent{At: now, Kind: TapDropQueue, From: from, To: from.Peer(), Frame: frame, FrameID: id})
		}
		return false
	}
	return true
}

// serTime is the serialization delay of wire bytes at rate bits/s.
func serTime(rate int64, wire int) time.Duration {
	return time.Duration(wire) * 8 * time.Duration(time.Second) / time.Duration(rate)
}

// transmit queues an admitted frame for serialization and delivery.
//
//fabric:hotpath
func (l *Link) transmit(from *Port, f *Frame) {
	p := l.proc[from.side]
	e := p.Engine()
	now := e.Now()
	wire := layers.WireBytes(f.Len())
	d := &l.dir[from.side]

	start := d.busyUntil
	if start < now {
		start = now
	}
	serialization := serTime(l.cfg.Rate, wire)
	txDone := start + serialization
	arrival := txDone + l.cfg.Delay

	d.queuedBytes += wire
	d.busyUntil = txDone
	d.busyTotal += serialization

	from.stats.TxFrames++
	from.stats.TxBytes += uint64(f.Len())
	to := from.Peer()
	if l.net.tracing() {
		l.net.emit(e, TapEvent{At: now, Kind: TapSend, From: from, To: to, Frame: f.Bytes(), FrameID: f.id})
	}

	// Both events are keyed now (not at txDone) by this direction's
	// identity, so the (time, owner, seq) order of deliveries — and every
	// ARP race outcome — is a function of the senders' histories alone.
	if co := l.net.co; co != nil && l.shard[from.side] != l.shard[to.side] {
		// Boundary link: serializer bookkeeping stays home; the arrival is
		// shipped with a sender-stamped key and its own clone of the
		// frame, to be injected into the destination shard's future at the
		// next window exchange. The key consumes this direction's sequence
		// numbers in the same order as the local path below, so the
		// destination's event order is identical at any shard count.
		fl := flightPool.Get().(*flight)
		fl.eng = e
		fl.link = l
		fl.from = from
		fl.frame = nil
		fl.epoch = l.epoch
		fl.wire = wire
		p.ScheduleRunner(txDone, fl, flightTxDone)
		co.ship(e.ID(), l.shard[to.side], remoteRec{
			at: arrival, owner: p.ID(), oseq: p.NextSeq(),
			link: l, side: int8(from.side), epoch: l.epoch, frame: f.clone(),
		})
		return
	}
	fl := flightPool.Get().(*flight)
	fl.eng = e
	fl.link = l
	fl.from = from
	fl.frame = f.Retain() // the flight's reference, released on delivery/drop
	fl.epoch = l.epoch
	fl.wire = wire
	p.ScheduleRunner(txDone, fl, flightTxDone)
	p.ScheduleRunner(arrival, fl, flightArrival)
}
