// datacenter: ARP-Path on the fat-tree fabric the paper's introduction
// motivates (data center and campus networks, [4]).
//
// Sixteen hosts on a k=4 fat tree run eight concurrent cross-pod UDP
// flows. Because every flow's discovery race senses the queues left by
// the flows before it, ARP-Path spreads traffic across the redundant
// spine — while STP, shown side by side, funnels everything through the
// tree and tail-drops (§2.2 "load distribution and path diversity").
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/topo"
)

func main() {
	ap := experiments.RunT2Load(1, topo.ARPPath)
	st := experiments.RunT2Load(1, topo.STP)
	fmt.Println(experiments.T2Table([]*experiments.T2Result{ap, st}))
	fmt.Printf("ARP-Path carried data on %d of %d trunk links (Jain %.3f); STP on %d (Jain %.3f).\n",
		ap.UsedLinks, ap.TrunkLinks, ap.Jain, st.UsedLinks, st.Jain)
	fmt.Printf("Delivered: ARP-Path %d/%d vs STP %d/%d datagrams.\n",
		ap.Delivered, ap.Sent, st.Delivered, st.Sent)
}
