// arp-vs-stp: the Figure 2 comparison, compact.
//
// The same physical testbed — hosts A and B behind NIC bridges, four
// NetFPGA bridges with a redundant mesh whose diagonal shortcut is a slow
// cable — is bridged once with ARP-Path and once with IEEE 802.1D STP.
// STP picks paths by hop cost and bridge IDs, so it happily uses the slow
// diagonal; ARP-Path races real latency and routes around it.
//
// Run with:
//
//	go run ./examples/arp-vs-stp
package main

import (
	"fmt"
	"time"

	"repro"
)

func measure(protocol string) {
	n := repro.Figure2Topology(1, protocol, "slow-diagonal")
	a, b := n.Host("A"), n.Host("B")

	// First exchange pays resolution/discovery; then ten steady pings.
	var rtts []time.Duration
	n.Engine.At(n.Now(), func() {
		a.PingSeries(b.IP(), 11, 56, 50*time.Millisecond, 2*time.Second,
			func(rs []repro.PingResult) {
				for _, r := range rs[1:] {
					if r.Err == nil {
						rtts = append(rtts, r.RTT)
					}
				}
			})
	})
	n.RunFor(time.Minute)

	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	mean := time.Duration(0)
	if len(rtts) > 0 {
		mean = sum / time.Duration(len(rtts))
	}
	fmt.Printf("%-8s steady-state RTT over %2d pings: %v\n", protocol, len(rtts), mean.Round(time.Microsecond))
}

func main() {
	fmt.Println("A <-> B across the demo testbed, slow-diagonal profile:")
	measure("arppath")
	measure("stp")
	fmt.Println("\nSTP's tree crosses the slow diagonal (fewest hops); ARP-Path's")
	fmt.Println("discovery race found the detour with lower real latency (§3.1).")
}
