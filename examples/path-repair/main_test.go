package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestPathRepairBuildsAndRuns executes the example as documented
// (`go run .`) and checks the demo's landmarks: two injected failures,
// a completed stream, and repair machinery that actually fired.
func TestPathRepairBuildsAndRuns(t *testing.T) {
	out, err := exec.Command("go", "run", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go run .: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"failure 1 — cutting",
		"complete=true",
		"goodput timeline:",
		"pathrequests=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
