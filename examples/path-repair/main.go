// path-repair: the Figure 3 demo, compact.
//
// Host A streams an 8 MiB "video" over HTTP (TCP-lite) to host B across
// the demo fabric. Mid-stream, the link currently carrying the stream is
// cut; ARP-Path's PathFail/PathRequest/PathReply exchange re-establishes
// a path in milliseconds and the stream barely notices (§3.2).
//
// Run with:
//
//	go run ./examples/path-repair
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/host/app"
)

func main() {
	n := repro.Figure2Topology(1, "arppath", "uniform")
	a, b := n.Host("A"), n.Host("B")

	cfg := app.DefaultStreamConfig()
	cfg.Size = 8 << 20

	var report *app.StreamReport
	start := n.Now()
	n.Engine.At(start, func() {
		app.StartStream(a, b, cfg, func(r *app.StreamReport) { report = r })
	})

	// Pull the cable the stream is riding, twice.
	for i, after := range []time.Duration{50 * time.Millisecond, 150 * time.Millisecond} {
		i := i
		n.Engine.At(start+after, func() {
			nf4 := n.ARPPathBridge("NF4")
			if e, ok := nf4.EntryFor(a.MAC()); ok && e.Port.Link().Up() {
				fmt.Printf("t=%v: failure %d — cutting %v\n", n.Now().Round(time.Millisecond), i+1, e.Port.Link())
				e.Port.Link().SetUp(false)
			}
		})
	}

	n.RunFor(2 * time.Minute)
	if report == nil {
		fmt.Println("stream did not finish")
		return
	}
	fmt.Printf("\nstream: %d bytes, complete=%v, transfer time=%v\n",
		report.Received, report.Complete,
		(report.Finished - report.Connected).Round(time.Millisecond))
	fmt.Printf("playback stalls over %v: %d (total %v)\n",
		cfg.StallThreshold, len(report.Stalls), report.TotalStall.Round(time.Millisecond))
	fmt.Println("\ngoodput timeline:")
	fmt.Println(report.Goodput.ASCII(72, 8))

	// Show the repair machinery that fired.
	for _, name := range []string{"NF1", "NF2", "NF3", "NF4"} {
		s := n.ARPPathBridge(name).Stats()
		if s.RepairsStarted+s.PathRequestsSent+s.PathRepliesSent > 0 {
			fmt.Printf("%s: repairs=%d pathfails=%d pathrequests=%d pathreplies=%d released=%d\n",
				name, s.RepairsStarted, s.PathFailsSent, s.PathRequestsSent,
				s.PathRepliesSent, s.RepairReleased)
		}
	}
}
