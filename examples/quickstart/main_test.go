package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestQuickstartBuildsAndRuns executes the example exactly as the README
// tells a reader to (`go run .`) and checks the walkthrough's landmarks:
// a discovery ping, the Figure 1 lock positions, and the faster
// established-path ping.
func TestQuickstartBuildsAndRuns(t *testing.T) {
	out, err := exec.Command("go", "run", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go run .: %v\n%s", err, out)
	}
	for _, want := range []string{
		"S -> D ping: rtt=",
		"Figure 1 lock positions",
		"established-path ping: rtt=",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
