// Quickstart: the paper's Figure 1 walkthrough in ~40 lines.
//
// Host S resolves host D's address across a five-bridge mesh. The flooded
// ARP Request races through the loops; each bridge locks S's address to
// the port where the first copy arrived (the figure's bubbles); the ARP
// Reply rides the locked chain back and confirms the minimum-latency
// path. No spanning tree, no routing protocol, no configuration.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	// The Figure 1 topology: S—B2; B2—B1, B2—B3; B1—B3; B1—B4; B3—B5;
	// B4—B5; B5—D, prebuilt with ARP-Path bridges.
	n := repro.Figure1Topology(1)
	s, d := n.Host("S"), n.Host("D")

	// One ping: the ARP exchange that precedes it is the discovery.
	n.Engine.At(n.Now(), func() {
		s.Ping(d.IP(), 56, time.Second, func(r repro.PingResult) {
			fmt.Printf("S -> D ping: rtt=%v (includes ARP + path discovery)\n\n", r.RTT)
		})
	})
	n.RunFor(100 * time.Millisecond)

	// Read the bubbles of Figure 1: where each bridge locked S.
	fmt.Println("Figure 1 lock positions (bridge: port locking S, state):")
	for _, name := range []string{"B1", "B2", "B3", "B4", "B5"} {
		b := n.ARPPathBridge(name)
		if e, ok := b.EntryFor(s.MAC()); ok {
			fmt.Printf("  %s: %v toward %s (%s)\n",
				name, e.Port, e.Port.Peer().Node().Name(), e.State)
		} else {
			fmt.Printf("  %s: (lock expired — off the confirmed path)\n", name)
		}
	}

	// A second ping rides the established path: no flooding this time.
	n.Engine.At(n.Now(), func() {
		s.Ping(d.IP(), 56, time.Second, func(r repro.PingResult) {
			fmt.Printf("\nestablished-path ping: rtt=%v\n", r.RTT)
		})
	})
	n.RunFor(100 * time.Millisecond)
}
