// Command scenario runs the adversarial scenario engine: seeded random
// topologies × seeded fault schedules × protocol invariant checks, with
// shrink-on-failure. Where the figure/table commands replay the paper's
// fixed experiments, this one hunts for the inputs that would falsify the
// paper's claims.
//
// Usage:
//
//	scenario [-seeds N] [-seed0 S] [-topo fam|all] [-faults fam|all] [-shrink] [-v]
//
// A failing scenario prints its minimal fault schedule and the exact
// triple to reproduce it; the exit status is nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
)

func main() {
	seeds := flag.Int("seeds", 16, "seeds per (topology, faults) pairing")
	seed0 := flag.Int64("seed0", 1, "first seed")
	topoFlag := flag.String("topo", "all", "topology family (or 'all'): "+familyList(scenario.TopologyFamilies()))
	faultFlag := flag.String("faults", "all", "fault family (or 'all'): "+familyList(scenario.FaultFamilies()))
	shrink := flag.Bool("shrink", true, "shrink failing fault schedules to a minimal subset")
	verbose := flag.Bool("v", false, "print every scenario, not just failures")
	flag.Parse()

	topos := scenario.TopologyFamilies()
	if *topoFlag != "all" {
		topos = []scenario.TopologyFamily{scenario.TopologyFamily(*topoFlag)}
	}
	faults := scenario.FaultFamilies()
	if *faultFlag != "all" {
		faults = []scenario.FaultFamily{scenario.FaultFamily(*faultFlag)}
	}

	ran, failed := 0, 0
	for _, tf := range topos {
		for _, ff := range faults {
			for s := 0; s < *seeds; s++ {
				cfg := scenario.Config{Seed: *seed0 + int64(s), Topology: tf, Faults: ff}
				r := scenario.Run(cfg)
				ran++
				if !r.Failed() {
					if *verbose {
						fmt.Printf("PASS %-40s bridges=%d links=%d events=%d probes=%d/%d bg=%d/%d fp=%#x\n",
							cfg.Name(), r.Bridges, r.Links, r.Events,
							r.ProbesAnswered, r.ProbesSent,
							r.BackgroundDelivered, r.BackgroundOffered, r.Fingerprint)
					}
					continue
				}
				failed++
				report(r)
				if *shrink {
					doShrink(cfg, r)
				}
			}
		}
	}
	fmt.Printf("\n%d scenarios, %d failed\n", ran, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func familyList[T ~string](fams []T) string {
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	return strings.Join(names, "|")
}

func report(r *scenario.Result) {
	fmt.Printf("FAIL %s (bridges=%d links=%d events=%d)\n", r.Config.Name(), r.Bridges, r.Links, r.Events)
	for _, v := range r.Violations {
		fmt.Printf("  violation: %v\n", v)
	}
	if r.ViolationsDropped > 0 {
		fmt.Printf("  ... and %d further violations\n", r.ViolationsDropped)
	}
	for _, op := range r.OpsApplied {
		fmt.Printf("  schedule: %s\n", op)
	}
}

func doShrink(cfg scenario.Config, r *scenario.Result) {
	min, res, ok := scenario.Shrink(cfg, r.Ops)
	if !ok {
		fmt.Printf("  shrink: failure does not reproduce from the fault schedule alone\n")
		return
	}
	fmt.Printf("  shrink: %d of %d ops suffice:\n", len(min), len(r.Ops))
	for _, op := range res.OpsApplied {
		fmt.Printf("    %s\n", op)
	}
	fmt.Printf("  reproduce: go run ./cmd/scenario -topo %s -faults %s -seed0 %d -seeds 1\n",
		cfg.Topology, cfg.Faults, cfg.Seed)
}
