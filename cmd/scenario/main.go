// Command scenario runs the adversarial scenario engine: seeded random
// topologies × seeded fault schedules × protocol invariant checks, with
// shrink-on-failure. Where the figure/table commands replay the paper's
// fixed experiments, this one hunts for the inputs that would falsify the
// paper's claims. It is a thin shell over pkg/fabric: flags compile into
// a fabric.Spec (workload kind "sweep"), or -spec loads one and
// explicitly set flags override it.
//
// Usage:
//
//	scenario [-spec FILE] [-seeds N] [-seed0 S] [-topo fam|all]
//	         [-faults fam|all] [-protocol arppath|flowpath|tcppath]
//	         [-j N] [-big] [-proxy] [-shards K] [-shrink] [-v]
//
// Independent scenarios of a sweep run concurrently on -j workers; each
// scenario's seed, trace and fingerprint are identical at any -j (frame
// accounting is per-network, nothing is shared between runs). -big selects
// the larger topology tier; -proxy runs every bridge with the in-switch
// ARP proxy (arming the proxy-consistency invariant); -shards runs each
// simulation itself on the sharded parallel engine, which by construction
// does not change any result either.
//
// A failing scenario prints its minimal fault schedule and the exact
// triple to reproduce it; the exit status is nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/scenario"
	"repro/pkg/fabric"
)

func main() {
	specPath := flag.String("spec", "", "run the spec file (explicitly set flags override it)")
	seeds := flag.Int("seeds", 16, "seeds per (topology, faults) pairing")
	seed0 := flag.Int64("seed0", 1, "first seed")
	topoFlag := flag.String("topo", "all", "topology family (or 'all'): "+familyList(scenario.TopologyFamilies()))
	faultFlag := flag.String("faults", "all", "fault family (or 'all'): "+familyList(scenario.FaultFamilies()))
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "scenarios to run concurrently")
	big := flag.Bool("big", false, "larger topology tier (dozens of bridges per instance)")
	protocol := flag.String("protocol", "arppath", "protocol under test: arppath, flowpath or tcppath")
	proxy := flag.Bool("proxy", false, "enable the in-switch ARP proxy on every bridge (arppath)")
	shards := flag.Int("shards", 1, "run each simulation on K parallel engine shards")
	shrink := flag.Bool("shrink", true, "shrink failing fault schedules to a minimal subset")
	verbose := flag.Bool("v", false, "print every scenario, not just failures")
	flag.Parse()
	if *jobs < 1 {
		*jobs = 1
	}

	spec := fabric.Spec{Workload: fabric.WorkloadSpec{Kind: "sweep"}}
	if *specPath != "" {
		var err error
		spec, err = fabric.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
	}
	if spec.Scenario == nil {
		spec.Scenario = &fabric.ScenarioSpec{}
	}
	use := fabric.FlagOverrides(flag.CommandLine, *specPath != "")
	if use("seeds") {
		spec.Scenario.Seeds = *seeds
	}
	if use("seed0") {
		spec.Seed = *seed0
	}
	if use("topo") {
		spec.Scenario.Topologies = []string{*topoFlag}
	}
	if use("faults") {
		spec.Scenario.Faults = []string{*faultFlag}
	}
	if use("big") {
		spec.Scenario.Big = *big
	}
	if use("shards") {
		spec.Shards = *shards
	}
	if use("shrink") {
		spec.Scenario.Shrink = shrink
	}
	if use("protocol") {
		spec.Protocol.Name = *protocol
	}
	// Merge, don't replace: a spec's other protocol settings survive, and
	// -proxy=false can disable a spec-enabled proxy. The proxy is an
	// ARP-Path knob: it is only folded in for arppath runs (or when set
	// explicitly, in which case a variant's strict config decode rejects
	// it with a real error instead of silently dropping it).
	if use("proxy") && (*proxy || spec.Protocol.Name == "" || spec.Protocol.Name == "arppath") {
		if spec.Protocol.Name == "" {
			spec.Protocol.Name = "arppath"
		}
		if err := spec.Protocol.SetOption("proxy", *proxy); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
	}

	runner := fabric.Runner{Spec: spec, Jobs: *jobs, Verbose: *verbose}
	res, err := runner.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

func familyList[T ~string](fams []T) string {
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	return strings.Join(names, "|")
}
