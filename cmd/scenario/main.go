// Command scenario runs the adversarial scenario engine: seeded random
// topologies × seeded fault schedules × protocol invariant checks, with
// shrink-on-failure. Where the figure/table commands replay the paper's
// fixed experiments, this one hunts for the inputs that would falsify the
// paper's claims.
//
// Usage:
//
//	scenario [-seeds N] [-seed0 S] [-topo fam|all] [-faults fam|all]
//	         [-j N] [-big] [-shards K] [-shrink] [-v]
//
// Independent scenarios of a sweep run concurrently on -j workers; each
// scenario's seed, trace and fingerprint are identical at any -j (frame
// accounting is per-network, nothing is shared between runs). -big selects
// the larger topology tier; -shards runs each simulation itself on the
// sharded parallel engine, which by construction does not change any
// result either.
//
// A failing scenario prints its minimal fault schedule and the exact
// triple to reproduce it; the exit status is nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/scenario"
)

func main() {
	seeds := flag.Int("seeds", 16, "seeds per (topology, faults) pairing")
	seed0 := flag.Int64("seed0", 1, "first seed")
	topoFlag := flag.String("topo", "all", "topology family (or 'all'): "+familyList(scenario.TopologyFamilies()))
	faultFlag := flag.String("faults", "all", "fault family (or 'all'): "+familyList(scenario.FaultFamilies()))
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "scenarios to run concurrently")
	big := flag.Bool("big", false, "larger topology tier (dozens of bridges per instance)")
	shards := flag.Int("shards", 1, "run each simulation on K parallel engine shards")
	shrink := flag.Bool("shrink", true, "shrink failing fault schedules to a minimal subset")
	verbose := flag.Bool("v", false, "print every scenario, not just failures")
	flag.Parse()
	if *jobs < 1 {
		*jobs = 1
	}

	topos := scenario.TopologyFamilies()
	if *topoFlag != "all" {
		topos = []scenario.TopologyFamily{scenario.TopologyFamily(*topoFlag)}
	}
	faults := scenario.FaultFamilies()
	if *faultFlag != "all" {
		faults = []scenario.FaultFamily{scenario.FaultFamily(*faultFlag)}
	}

	var cfgs []scenario.Config
	for _, tf := range topos {
		for _, ff := range faults {
			for s := 0; s < *seeds; s++ {
				cfgs = append(cfgs, scenario.Config{
					Seed: *seed0 + int64(s), Topology: tf, Faults: ff,
					Big: *big, Shards: *shards,
				})
			}
		}
	}

	// Worker pool: scenarios are independent simulations, so the sweep
	// parallelizes trivially; results are reported in sweep order.
	results := make([]*scenario.Result, len(cfgs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = scenario.Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()

	failed := 0
	for i, r := range results {
		if !r.Failed() {
			if *verbose {
				fmt.Printf("PASS %-40s bridges=%d links=%d events=%d probes=%d/%d warm=%d/%d bg=%d/%d fp=%#x\n",
					cfgs[i].Name(), r.Bridges, r.Links, r.Events,
					r.ProbesAnswered, r.ProbesSent,
					r.WarmProbesAnswered, r.WarmProbesSent,
					r.BackgroundDelivered, r.BackgroundOffered, r.Fingerprint)
			}
			continue
		}
		failed++
		report(r)
		if *shrink {
			doShrink(cfgs[i], r)
		}
	}
	fmt.Printf("\n%d scenarios, %d failed (j=%d, big=%v, shards=%d)\n", len(cfgs), failed, *jobs, *big, *shards)
	if failed > 0 {
		os.Exit(1)
	}
}

func familyList[T ~string](fams []T) string {
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	return strings.Join(names, "|")
}

func report(r *scenario.Result) {
	fmt.Printf("FAIL %s (bridges=%d links=%d events=%d)\n", r.Config.Name(), r.Bridges, r.Links, r.Events)
	for _, v := range r.Violations {
		fmt.Printf("  violation: %v\n", v)
	}
	if r.ViolationsDropped > 0 {
		fmt.Printf("  ... and %d further violations\n", r.ViolationsDropped)
	}
	for _, op := range r.OpsApplied {
		fmt.Printf("  schedule: %s\n", op)
	}
}

func doShrink(cfg scenario.Config, r *scenario.Result) {
	min, res, ok := scenario.Shrink(cfg, r.Ops)
	if !ok {
		fmt.Printf("  shrink: failure does not reproduce from the fault schedule alone\n")
		return
	}
	fmt.Printf("  shrink: %d of %d ops suffice:\n", len(min), len(r.Ops))
	for _, op := range res.OpsApplied {
		fmt.Printf("    %s\n", op)
	}
	fmt.Printf("  reproduce: go run ./cmd/scenario -topo %s -faults %s -seed0 %d -seeds 1\n",
		cfg.Topology, cfg.Faults, cfg.Seed)
}
