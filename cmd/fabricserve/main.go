// Command fabricserve keeps a fabric resident and serves streamed ops
// against it (DESIGN.md §13). Three modes:
//
//	fabricserve -spec FILE [-shards K] [-listen unix:PATH|tcp:ADDR]
//	            [-oplog FILE] [-quantum D] [-pace R] [-metrics ADDR]
//
// boots the daemon: clients connect to -listen and drive workload and
// fault ops as newline-delimited JSON; every accepted op lands on a
// quantized virtual-time boundary and appends to -oplog. -metrics serves
// the live text exposition over HTTP. -pace 1.0 runs virtual time no
// faster than wall time; the default runs flat out.
//
//	fabricserve -replay FILE [-shards K]
//
// re-executes a session op-log and prints the session report; its trace
// fingerprint is byte-identical to the live run's, at any -shards.
//
//	fabricserve -soak -connect unix:PATH|tcp:ADDR [-seed N]
//	            [-duration D] [-slo D]
//
// drives seeded churn (priority pings under background load and a fault
// storm) against a live daemon, then drains it and asserts the
// priority-class p99 SLO; the exit status is the verdict.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"net/http"

	"repro/pkg/fabric"
	"repro/pkg/fabric/serve"
)

// splitAddr parses "unix:PATH" or "tcp:HOST:PORT" into a (network,
// address) pair for net.Listen / net.Dial.
func splitAddr(s string) (network, addr string, err error) {
	network, addr, ok := strings.Cut(s, ":")
	if !ok || (network != "unix" && network != "tcp") {
		return "", "", fmt.Errorf("address %q must be unix:PATH or tcp:HOST:PORT", s)
	}
	return network, addr, nil
}

func main() {
	specPath := flag.String("spec", "", "serve the fabric this spec file describes (default: the figure 2 fabric)")
	shards := flag.Int("shards", 0, "override the spec's (or the op-log header's) shard count")
	listen := flag.String("listen", "unix:fabricserve.sock", "op endpoint: unix:PATH or tcp:HOST:PORT")
	opLog := flag.String("oplog", "", "append the session op-log to this file")
	quantum := flag.Duration("quantum", 0, "virtual-time op grid (default 10ms)")
	pace := flag.Float64("pace", 0, "max virtual seconds per wall second (0 = flat out)")
	metricsAddr := flag.String("metrics", "", "serve /metrics over HTTP on this address")
	replay := flag.String("replay", "", "replay this session op-log instead of serving")
	soak := flag.Bool("soak", false, "run the soak client instead of serving")
	connect := flag.String("connect", "", "soak: daemon endpoint, unix:PATH or tcp:HOST:PORT")
	seed := flag.Int64("seed", 1, "soak: churn seed")
	duration := flag.Duration("duration", time.Second, "soak: virtual time to drive")
	slo := flag.Duration("slo", 20*time.Millisecond, "soak: priority-class p99 ceiling")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "soak: how long to retry the initial connect")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "fabricserve: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "fabricserve: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *soak:
		network, addr, err := splitAddr(*connect)
		if err != nil {
			fail(fmt.Errorf("-connect: %w", err))
		}
		if _, err := serve.Soak(serve.SoakConfig{
			Network: network, Addr: addr,
			Seed: *seed, Duration: *duration, SLO: *slo,
			DialTimeout: *dialTimeout, Out: os.Stdout,
		}); err != nil {
			fail(err)
		}

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if _, err := serve.Replay(f, *shards, os.Stdout); err != nil {
			fail(err)
		}

	default:
		spec := fabric.Spec{}
		if *specPath != "" {
			var err error
			spec, err = fabric.LoadSpec(*specPath)
			if err != nil {
				fail(err)
			}
		}
		if *shards > 0 {
			spec.Shards = *shards
		}
		opts := serve.Options{Spec: spec, Quantum: *quantum, Pace: *pace, Out: os.Stdout}
		if *opLog != "" {
			f, err := os.Create(*opLog)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			opts.OpLog = f
		}
		network, addr, err := splitAddr(*listen)
		if err != nil {
			fail(fmt.Errorf("-listen: %w", err))
		}
		if network == "unix" {
			os.Remove(addr)
		}
		srv, err := serve.New(opts)
		if err != nil {
			fail(err)
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			fail(err)
		}
		if network == "unix" {
			defer os.Remove(addr)
		}
		if *metricsAddr != "" {
			go func() {
				mux := http.NewServeMux()
				mux.Handle("/metrics", srv.MetricsHandler())
				if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
					fmt.Fprintf(os.Stderr, "fabricserve: metrics endpoint: %v\n", err)
				}
			}()
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			srv.Shutdown()
		}()
		fmt.Fprintf(os.Stderr, "fabricserve: serving on %s:%s\n", network, addr)
		if err := srv.Serve(ln); err != nil {
			fail(err)
		}
		srv.Wait()
	}
}
