// Command pathrepair reproduces the paper's Figure 3 demo: host A streams
// a video over HTTP (TCP-lite) to host B across the 4-NetFPGA fabric
// while links on the active path are cut one after another. It reports
// per-failure repair times and the goodput timeline, optionally running
// the same scenario under 802.1D STP for contrast. It is a thin shell
// over pkg/fabric: flags compile into a fabric.Spec, or -spec loads one
// and explicitly set flags override it.
//
// Usage:
//
//	pathrepair [-spec FILE] [-seed N] [-size BYTES] [-failures N] [-stp]
//	           [-fast-stp] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pkg/fabric"
)

func main() {
	specPath := flag.String("spec", "", "run the spec file (explicitly set flags override it)")
	seed := flag.Int64("seed", 1, "simulation seed")
	size := flag.Int("size", 32<<20, "video size in bytes")
	failures := flag.Int("failures", 2, "number of successive link failures")
	withSTP := flag.Bool("stp", true, "also run the STP baseline")
	fastSTP := flag.Bool("fast-stp", false, "use the fastest legal STP timers")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "pathrepair: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	spec := fabric.Spec{Workload: fabric.WorkloadSpec{Kind: "path-repair"}}
	if *specPath != "" {
		var err error
		spec, err = fabric.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathrepair: %v\n", err)
			os.Exit(2)
		}
	}
	use := fabric.FlagOverrides(flag.CommandLine, *specPath != "")
	if use("seed") {
		spec.Seed = *seed
	}
	if use("size") {
		spec.Workload.StreamSize = *size
	}
	if use("failures") {
		spec.Workload.Failures = *failures
	}
	if use("stp") {
		spec.Workload.WithSTP = withSTP
	}
	if use("fast-stp") {
		spec.Workload.FastSTP = *fastSTP
	}

	runner := fabric.Runner{Spec: spec, CSV: *csv}
	if _, err := runner.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "pathrepair: %v\n", err)
		os.Exit(1)
	}
}
