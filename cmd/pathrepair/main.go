// Command pathrepair reproduces the paper's Figure 3 demo: host A streams
// a video over HTTP (TCP-lite) to host B across the 4-NetFPGA fabric
// while links on the active path are cut one after another. It reports
// per-failure repair times and the goodput timeline, optionally running
// the same scenario under 802.1D STP for contrast.
//
// Usage:
//
//	pathrepair [-seed N] [-size BYTES] [-failures N] [-stp] [-fast-stp] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/stp"
	"repro/internal/topo"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	size := flag.Int("size", 32<<20, "video size in bytes")
	failures := flag.Int("failures", 2, "number of successive link failures")
	withSTP := flag.Bool("stp", true, "also run the STP baseline")
	fastSTP := flag.Bool("fast-stp", false, "use the fastest legal STP timers")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "pathrepair: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultFigure3Config()
	cfg.Seed = *seed
	cfg.StreamSize = *size
	cfg.FailureTimes = nil
	for i := 0; i < *failures; i++ {
		cfg.FailureTimes = append(cfg.FailureTimes, time.Duration(50+100*i)*time.Millisecond)
	}
	if *fastSTP {
		cfg.STPTimers = stp.FastTimers()
	}

	results := []*experiments.Figure3Result{experiments.RunFigure3(cfg, topo.ARPPath)}
	if *withSTP {
		results = append(results, experiments.RunFigure3(cfg, topo.STP))
	}
	table := experiments.Figure3Table(results)
	if *csv {
		fmt.Print(table.CSV())
		return
	}
	fmt.Println(table)
	for _, r := range results {
		if r.Report != nil && r.Report.Goodput != nil {
			fmt.Println(r.Report.Goodput.ASCII(72, 8))
		}
	}
}
