// Command fabricbench runs the extended experiments derived from the
// paper's §2.2 claims (DESIGN.md T1–T4): the loop-freedom/no-blocking
// properties table, load distribution on a fat tree, ARP-proxy broadcast
// suppression, and the repair ablation.
//
// Usage:
//
//	fabricbench -exp properties|load|proxy|repair|all [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// lockWindows is the T5 sweep: below, near and above the test ring's
// flood traversal time.
func lockWindows() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
		200 * time.Millisecond,
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment: properties, load, proxy, repair, lockwindow, tablesize, forward or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	frames := flag.Int("frames", 50_000, "data frames to pump in -exp forward")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "fabricbench: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	var tables []*metrics.Table
	switch *exp {
	case "properties":
		tables = append(tables, experiments.T1Table(experiments.RunT1Properties(*seed, 6)))
	case "load":
		ap := experiments.RunT2Load(*seed, topo.ARPPath)
		st := experiments.RunT2Load(*seed, topo.STP)
		tables = append(tables, experiments.T2Table([]*experiments.T2Result{ap, st}))
	case "proxy":
		tables = append(tables, experiments.T3Table(experiments.RunT3Proxy(*seed, []int{4, 8, 16, 32})))
	case "repair":
		tables = append(tables, experiments.T4Table(experiments.RunT4Repair(*seed)))
	case "lockwindow":
		tables = append(tables, experiments.T5Table(experiments.RunT5LockWindow(*seed, lockWindows())))
	case "tablesize":
		tables = append(tables, experiments.T6Table(experiments.RunT6TableSize(*seed, []int{8, 16, 32})))
	case "forward":
		tables = append(tables, experiments.ForwardTable(experiments.RunForwardBench(*seed, *frames)))
	case "all":
		tables = append(tables, experiments.T1Table(experiments.RunT1Properties(*seed, 6)))
		ap := experiments.RunT2Load(*seed, topo.ARPPath)
		st := experiments.RunT2Load(*seed, topo.STP)
		tables = append(tables, experiments.T2Table([]*experiments.T2Result{ap, st}))
		tables = append(tables, experiments.T3Table(experiments.RunT3Proxy(*seed, []int{4, 8, 16, 32})))
		tables = append(tables, experiments.T4Table(experiments.RunT4Repair(*seed)))
		tables = append(tables, experiments.T5Table(experiments.RunT5LockWindow(*seed, lockWindows())))
		tables = append(tables, experiments.T6Table(experiments.RunT6TableSize(*seed, []int{8, 16, 32})))
	default:
		fmt.Fprintf(os.Stderr, "fabricbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}
}
