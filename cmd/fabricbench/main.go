// Command fabricbench runs the extended experiments derived from the
// paper's §2.2 claims (DESIGN.md T1–T4): the loop-freedom/no-blocking
// properties table, load distribution on a fat tree, ARP-proxy broadcast
// suppression, the repair ablation, and the scaling experiment for the
// sharded parallel engine (DESIGN.md §8).
//
// Usage:
//
//	fabricbench -exp properties|load|proxy|repair|lockwindow|tablesize|forward|scale|all
//	            [-seed N] [-shards K] [-csv] [-bench-out FILE]
//
// -shards runs every experiment's simulation on K parallel engine shards;
// all figure/table outputs are byte-identical for any K (only wall-clock
// rates change). -exp scale sweeps shard counts 1..K on a 256-bridge
// fabric and, with -bench-out, writes the wall-clock figures as a JSON
// artifact (BENCH_scale.json in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// lockWindows is the T5 sweep: below, near and above the test ring's
// flood traversal time.
func lockWindows() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
		200 * time.Millisecond,
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment: properties, load, proxy, repair, lockwindow, tablesize, forward, scale or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	frames := flag.Int("frames", 50_000, "data frames to pump in -exp forward")
	shards := flag.Int("shards", 1, "run simulations on K parallel engine shards")
	bridges := flag.Int("bridges", 256, "fabric size for -exp scale")
	benchOut := flag.String("bench-out", "", "write -exp scale wall-clock figures as JSON to this file")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "fabricbench: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		*shards = 1
	}
	experiments.Shards = *shards

	var tables []*metrics.Table
	switch *exp {
	case "properties":
		tables = append(tables, experiments.T1Table(experiments.RunT1Properties(*seed, 6)))
	case "load":
		ap := experiments.RunT2Load(*seed, topo.ARPPath)
		st := experiments.RunT2Load(*seed, topo.STP)
		tables = append(tables, experiments.T2Table([]*experiments.T2Result{ap, st}))
	case "proxy":
		tables = append(tables, experiments.T3Table(experiments.RunT3Proxy(*seed, []int{4, 8, 16, 32})))
	case "repair":
		tables = append(tables, experiments.T4Table(experiments.RunT4Repair(*seed)))
	case "lockwindow":
		tables = append(tables, experiments.T5Table(experiments.RunT5LockWindow(*seed, lockWindows())))
	case "tablesize":
		tables = append(tables, experiments.T6Table(experiments.RunT6TableSize(*seed, []int{8, 16, 32})))
	case "forward":
		tables = append(tables, experiments.ForwardTable(experiments.RunForwardBench(*seed, *frames)))
	case "scale":
		tables = append(tables, runScale(*seed, *bridges, *shards, *benchOut))
	case "all":
		tables = append(tables, experiments.T1Table(experiments.RunT1Properties(*seed, 6)))
		ap := experiments.RunT2Load(*seed, topo.ARPPath)
		st := experiments.RunT2Load(*seed, topo.STP)
		tables = append(tables, experiments.T2Table([]*experiments.T2Result{ap, st}))
		tables = append(tables, experiments.T3Table(experiments.RunT3Proxy(*seed, []int{4, 8, 16, 32})))
		tables = append(tables, experiments.T4Table(experiments.RunT4Repair(*seed)))
		tables = append(tables, experiments.T5Table(experiments.RunT5LockWindow(*seed, lockWindows())))
		tables = append(tables, experiments.T6Table(experiments.RunT6TableSize(*seed, []int{8, 16, 32})))
	default:
		fmt.Fprintf(os.Stderr, "fabricbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}
}

// benchRecord is one scale run's machine-dependent half, serialized for
// the CI bench artifact.
type benchRecord struct {
	Bridges      int     `json:"bridges"`
	Shards       int     `json:"shards"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	LookaheadNS  int64   `json:"lookahead_ns"`
	Events       uint64  `json:"events"`
	Delivered    int     `json:"delivered"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// runScale sweeps shard counts 1..maxShards (doubling) on one fabric and
// renders the deterministic table; wall-clock figures go to stderr and,
// when benchOut is set, to a JSON artifact.
func runScale(seed int64, bridges, maxShards int, benchOut string) *metrics.Table {
	// Shard counts: doubling from 1, always ending exactly at maxShards.
	var counts []int
	for k := 1; k < maxShards; k *= 2 {
		counts = append(counts, k)
	}
	counts = append(counts, maxShards)
	var results []*experiments.ScaleResult
	var records []benchRecord
	for _, k := range counts {
		cfg := experiments.DefaultScaleConfig(seed, k)
		cfg.Bridges = bridges
		r := experiments.RunScale(cfg)
		results = append(results, r)
		fmt.Fprintln(os.Stderr, experiments.ScaleBenchLine(r))
		records = append(records, benchRecord{
			Bridges: r.Bridges, Shards: k, GOMAXPROCS: runtime.GOMAXPROCS(0),
			LookaheadNS: int64(r.Lookahead), Events: r.Events, Delivered: r.Delivered,
			WallNS: int64(r.Wall), EventsPerSec: r.EventsPerSec, FramesPerSec: r.FramesPerSec,
		})
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricbench: writing %s: %v\n", benchOut, err)
			os.Exit(1)
		}
	}
	return experiments.ScaleTable(results)
}
