// Command fabricbench runs the extended experiments derived from the
// paper's §2.2 claims (DESIGN.md T1–T4): the loop-freedom/no-blocking
// properties table, load distribution on a fat tree, ARP-proxy broadcast
// suppression, the repair ablation, and the scaling experiment for the
// sharded parallel engine (DESIGN.md §8). It is a thin shell over
// pkg/fabric: flags compile into a fabric.Spec, or -spec loads one and
// explicitly set flags override it.
//
// Usage:
//
//	fabricbench [-spec FILE]
//	            [-exp properties|load|proxy|repair|lockwindow|tablesize|forward|scale|allpath|tables|all]
//	            [-seed N] [-shards K] [-procs LIST] [-csv] [-bench-out FILE]
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	            [-mutexprofile FILE] [-blockprofile FILE]
//
// The profiling flags record pprof/runtime-trace artifacts around the
// workload (DESIGN.md §11 documents the recipe); they change nothing in
// any table, figure or fingerprint. -mutexprofile and -blockprofile
// capture lock contention and blocking waits — the collectors that show
// whether the shard coordinator's window barrier is stalling workers.
//
// -shards runs every experiment's simulation on K parallel engine shards;
// all figure/table outputs are byte-identical for any K (only wall-clock
// rates change). -exp scale sweeps shard counts 1..K on a 256-bridge
// fabric and, with -bench-out, writes the wall-clock figures as a JSON
// artifact (BENCH_scale.json in CI). -procs repeats that sweep at each
// GOMAXPROCS in a comma list ("1,2,4"), or at every power of two up to
// the machine's cores with -procs auto, producing the multi-core speedup
// matrix the benchdiff -speedup gate consumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/pkg/fabric"
)

// parseProcs turns the -procs flag into a GOMAXPROCS sweep: an explicit
// comma list, or "auto" — powers of two up to the machine's core count
// (always including 1), so a 1-core runner degrades to a single pass.
func parseProcs(s string) ([]int, error) {
	if s == "auto" {
		cores := runtime.NumCPU()
		var list []int
		for p := 1; p <= cores; p *= 2 {
			list = append(list, p)
		}
		return list, nil
	}
	var list []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		list = append(list, p)
	}
	return list, nil
}

func main() {
	specPath := flag.String("spec", "", "run the spec file (explicitly set flags override it)")
	exp := flag.String("exp", "all", "experiment: properties, load, proxy, repair, lockwindow, tablesize, forward, scale, allpath, tables or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	frames := flag.Int("frames", 50_000, "data frames to pump in -exp forward")
	shards := flag.Int("shards", 1, "run simulations on K parallel engine shards")
	bridges := flag.Int("bridges", 0, "fabric size override for -exp scale / -exp allpath (0 = the experiment's default)")
	conversations := flag.Int("conversations", 0, "conversation count override for -exp tables (0 = the spec/experiment default)")
	benchOut := flag.String("bench-out", "", "write the -exp scale / -exp allpath / -exp tables JSON artifact to this file")
	procs := flag.String("procs", "", "GOMAXPROCS sweep for -exp scale: a comma list like 1,2,4, or auto (powers of two up to the machine's cores)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the workload to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-workload, after GC) to this file")
	execTrace := flag.String("trace", "", "write a runtime execution trace of the workload to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile of the workload to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile of the workload to this file")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "fabricbench: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	spec := fabric.Spec{Workload: fabric.WorkloadSpec{Kind: "all"}}
	if *specPath != "" {
		var err error
		spec, err = fabric.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricbench: %v\n", err)
			os.Exit(2)
		}
	}
	use := fabric.FlagOverrides(flag.CommandLine, *specPath != "")
	if use("exp") {
		spec.Workload.Kind = *exp
	}
	if use("seed") {
		spec.Seed = *seed
	}
	if use("shards") {
		spec.Shards = *shards
	}
	if use("frames") {
		spec.Workload.Frames = *frames
	}
	if use("bridges") && *bridges > 0 {
		spec.Workload.Bridges = *bridges
	}
	if use("conversations") && *conversations > 0 {
		spec.Workload.Conversations = *conversations
	}
	if use("procs") && *procs != "" {
		list, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricbench: %v\n", err)
			os.Exit(2)
		}
		spec.Procs = list
	}

	switch spec.Workload.Kind {
	case "properties", "load", "proxy", "repair", "lockwindow", "tablesize", "forward", "scale", "allpath", "tables", "all":
	default:
		fmt.Fprintf(os.Stderr, "fabricbench: unknown experiment %q\n", spec.Workload.Kind)
		os.Exit(2)
	}

	runner := fabric.Runner{Spec: spec, CSV: *csv, Profile: fabric.ProfileOptions{
		CPUPath: *cpuProfile, MemPath: *memProfile, TracePath: *execTrace,
		MutexPath: *mutexProfile, BlockPath: *blockProfile,
	}}
	res, err := runner.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabricbench: %v\n", err)
		os.Exit(1)
	}
	if *benchOut != "" && res.BenchJSON != nil {
		if err := os.WriteFile(*benchOut, res.BenchJSON, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fabricbench: writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
	}
}
