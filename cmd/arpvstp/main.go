// Command arpvstp reproduces the paper's Figure 2 demo: hosts A and B
// ping each other across the 4-NetFPGA + 2-NIC testbed, once bridged by
// ARP-Path and once by IEEE 802.1D STP, over several link-delay profiles.
// It prints the per-ping latency series (the demo UI's graph, as ASCII),
// the steady-state comparison table, and the headline latency ratios.
// It is a thin shell over pkg/fabric: flags compile into a fabric.Spec,
// or -spec loads one and explicitly set flags override it.
//
// Usage:
//
//	arpvstp [-spec FILE] [-seed N] [-pings N] [-interval D] [-csv] [-graphs]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/pkg/fabric"
)

func main() {
	specPath := flag.String("spec", "", "run the spec file (explicitly set flags override it)")
	seed := flag.Int64("seed", 1, "simulation seed (same seed, same run)")
	pings := flag.Int("pings", 20, "pings per scenario")
	interval := flag.Duration("interval", 100*time.Millisecond, "ping spacing")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	graphs := flag.Bool("graphs", true, "render per-scenario latency graphs")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "arpvstp: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	spec := fabric.Spec{Workload: fabric.WorkloadSpec{Kind: "figure2-demo"}}
	if *specPath != "" {
		var err error
		spec, err = fabric.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arpvstp: %v\n", err)
			os.Exit(2)
		}
	}
	use := fabric.FlagOverrides(flag.CommandLine, *specPath != "")
	if use("seed") {
		spec.Seed = *seed
	}
	if use("pings") {
		spec.Workload.Pings = *pings
	}
	if use("interval") {
		spec.Workload.Interval = fabric.Duration(*interval)
	}

	runner := fabric.Runner{Spec: spec, CSV: *csv, Graphs: *graphs}
	if _, err := runner.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "arpvstp: %v\n", err)
		os.Exit(1)
	}
}
