// Command arpvstp reproduces the paper's Figure 2 demo: hosts A and B
// ping each other across the 4-NetFPGA + 2-NIC testbed, once bridged by
// ARP-Path and once by IEEE 802.1D STP, over several link-delay profiles.
// It prints the per-ping latency series (the demo UI's graph, as ASCII),
// the steady-state comparison table, and the headline latency ratios.
//
// Usage:
//
//	arpvstp [-seed N] [-pings N] [-interval D] [-csv] [-graphs]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (same seed, same run)")
	pings := flag.Int("pings", 20, "pings per scenario")
	interval := flag.Duration("interval", 100*time.Millisecond, "ping spacing")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	graphs := flag.Bool("graphs", true, "render per-scenario latency graphs")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "arpvstp: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultFigure2Config()
	cfg.Seed = *seed
	cfg.Pings = *pings
	cfg.Interval = *interval

	rows := experiments.RunFigure2(cfg)
	table := experiments.Figure2Table(rows)
	speedups := experiments.Figure2Speedups(rows)
	if *csv {
		fmt.Print(table.CSV())
		fmt.Print(speedups.CSV())
		return
	}
	fmt.Println(table)
	fmt.Println(speedups)
	if *graphs {
		for _, r := range rows {
			fmt.Println(r.Series.ASCII(72, 8))
		}
	}
}
