// Command arppath-sim is the general-purpose simulator CLI: pick a
// topology, a bridging protocol and a workload, and it prints what
// happened. The -trace flag streams a tcpdump-style view of every frame.
//
// Usage:
//
//	arppath-sim [-topo figure1|figure2|line|ring|grid|fattree|random]
//	            [-bridge arppath|stp|learning] [-workload ping|stream|allpairs]
//	            [-n N] [-seed N] [-trace] [-proxy]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	topoName := flag.String("topo", "figure2", "topology: figure1, figure2, line, ring, grid, fattree, random")
	bridgeProto := flag.String("bridge", "arppath", "bridging protocol: arppath, stp, learning")
	workload := flag.String("workload", "ping", "workload: ping, stream, allpairs")
	n := flag.Int("n", 4, "topology size parameter (bridges, ring size, fat-tree k, ...)")
	seed := flag.Int64("seed", 1, "simulation seed")
	traceFlag := flag.Bool("trace", false, "stream every frame event to stderr")
	proxy := flag.Bool("proxy", false, "enable the in-switch ARP proxy (arppath only)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "arppath-sim: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	opts := topo.DefaultOptions(topo.Protocol(*bridgeProto), *seed)
	opts.ARPPathConfig.Proxy = *proxy

	var built *topo.Built
	switch *topoName {
	case "figure1":
		built = topo.Figure1(opts)
	case "figure2":
		built = topo.Figure2(opts, topo.ProfileSlowDiagonal)
	case "line":
		built = topo.Line(opts, *n)
	case "ring":
		built = topo.Ring(opts, *n)
	case "grid":
		built = topo.Grid(opts, *n, *n)
	case "fattree":
		built = topo.FatTree(opts, *n)
	case "random":
		built = topo.Random(opts, *n, *n)
	default:
		fmt.Fprintf(os.Stderr, "arppath-sim: unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	if *traceFlag {
		trace.Attach(built.Network, trace.WithWriter(os.Stderr), trace.WithFilter(trace.DeliveriesOnly))
	}

	// Pick two hosts for the point-to-point workloads: the first and last
	// in the topology's natural naming.
	first, last := pickEndpoints(built)
	fmt.Printf("topology=%s bridges=%d hosts=%d links=%d protocol=%s seed=%d\n\n",
		*topoName, len(built.Bridges), len(built.Hosts), len(built.Links), *bridgeProto, *seed)

	switch *workload {
	case "ping":
		runPing(built, first, last)
	case "stream":
		runStream(built, first, last)
	case "allpairs":
		runAllPairs(built)
	default:
		fmt.Fprintf(os.Stderr, "arppath-sim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
}

// pickEndpoints returns a deterministic pair of distinct hosts.
func pickEndpoints(b *topo.Built) (*host.Host, *host.Host) {
	for _, pair := range [][2]string{{"A", "B"}, {"S", "D"}, {"H1", "H2"}} {
		if h1, ok := b.Hosts[pair[0]]; ok {
			if h2, ok := b.Hosts[pair[1]]; ok {
				return h1, h2
			}
		}
	}
	// Fall back to the two highest-numbered H hosts.
	var h1, h2 *host.Host
	for i := len(b.Hosts); i >= 1; i-- {
		if h, ok := b.Hosts[fmt.Sprintf("H%d", i)]; ok {
			if h2 == nil {
				h2 = h
			} else {
				h1 = h
				break
			}
		}
	}
	if h1 == nil || h2 == nil {
		fmt.Fprintln(os.Stderr, "arppath-sim: topology has no usable host pair")
		os.Exit(1)
	}
	return h1, h2
}

func runPing(built *topo.Built, a, b *host.Host) {
	var rep *app.PingReport
	built.Engine.At(built.Now(), func() {
		app.RunPingSeries(a, b.IP(), 20, 100*time.Millisecond, func(r *app.PingReport) { rep = r })
	})
	built.RunFor(time.Minute)
	if rep == nil {
		fmt.Println("ping series did not finish")
		os.Exit(1)
	}
	fmt.Printf("%s -> %s: sent=%d lost=%d\n", a.Name(), b.Name(), rep.Sent, rep.Lost)
	fmt.Printf("rtt: %s\n\n", rep.RTTs.String())
	fmt.Println(rep.Series.ASCII(72, 8))
}

func runStream(built *topo.Built, a, b *host.Host) {
	cfg := app.DefaultStreamConfig()
	var rep *app.StreamReport
	built.Engine.At(built.Now(), func() {
		app.StartStream(a, b, cfg, func(r *app.StreamReport) { rep = r })
	})
	built.RunFor(5 * time.Minute)
	if rep == nil {
		fmt.Println("stream did not finish inside the budget")
		os.Exit(1)
	}
	fmt.Printf("%s -> %s: %d bytes, complete=%v, stalls=%d, total stall=%v, time=%v\n\n",
		a.Name(), b.Name(), rep.Received, rep.Complete, len(rep.Stalls),
		rep.TotalStall.Round(time.Millisecond),
		(rep.Finished - rep.Connected).Round(time.Millisecond))
	fmt.Println(rep.Goodput.ASCII(72, 8))
}

func runAllPairs(built *topo.Built) {
	table := metrics.NewTable("all-pairs steady-state RTT", "pair", "first", "steady", "lost")
	names := make([]string, 0, len(built.Hosts))
	for i := 1; i <= len(built.Hosts); i++ {
		name := fmt.Sprintf("H%d", i)
		if _, ok := built.Hosts[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		fmt.Println("allpairs needs H1..Hn hosts (use ring/grid/fattree/random)")
		os.Exit(1)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := built.Host(names[i]), built.Host(names[j])
			var results []host.PingResult
			built.Engine.At(built.Now(), func() {
				a.PingSeries(b.IP(), 5, 56, 10*time.Millisecond, 2*time.Second, func(rs []host.PingResult) {
					results = rs
				})
			})
			built.RunFor(10 * time.Second)
			var first, steady time.Duration
			lost := 0
			var d metrics.Distribution
			for k, r := range results {
				if r.Err != nil {
					lost++
					continue
				}
				if k == 0 {
					first = r.RTT
				} else {
					d.Add(r.RTT)
				}
			}
			steady = d.Mean()
			table.AddRow(names[i]+"-"+names[j], first.Round(time.Microsecond),
				steady.Round(time.Microsecond), lost)
		}
	}
	fmt.Println(table)
}
