// Command arppath-sim is the general-purpose simulator CLI: pick a
// topology, a bridging protocol and a workload, and it prints what
// happened. The -trace flag streams a tcpdump-style view of every frame.
// It is a thin shell over pkg/fabric: flags compile into a fabric.Spec,
// or -spec loads one and explicitly set flags override it.
//
// Usage:
//
//	arppath-sim [-spec FILE]
//	            [-topo figure1|figure2|line|ring|grid|fattree|random]
//	            [-bridge arppath|stp|learning|flowpath|tcppath]
//	            [-workload ping|stream|allpairs|matrix]
//	            [-n N] [-seed N] [-trace] [-proxy]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/pkg/fabric"
)

func main() {
	specPath := flag.String("spec", "", "run the spec file (explicitly set flags override it)")
	topoName := flag.String("topo", "figure2", "topology: figure1, figure2, line, ring, grid, fattree, random")
	bridgeProto := flag.String("bridge", "arppath", "bridging protocol: arppath, stp, learning, flowpath, tcppath")
	workload := flag.String("workload", "ping", "workload: ping, stream, allpairs, matrix")
	n := flag.Int("n", 4, "topology size parameter (bridges, ring size, fat-tree k, ...)")
	seed := flag.Int64("seed", 1, "simulation seed")
	traceFlag := flag.Bool("trace", false, "stream every frame event to stderr")
	proxy := flag.Bool("proxy", false, "enable the in-switch ARP proxy (arppath only)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "arppath-sim: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	spec := fabric.Spec{}
	if *specPath != "" {
		var err error
		spec, err = fabric.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arppath-sim: %v\n", err)
			os.Exit(2)
		}
	}
	use := fabric.FlagOverrides(flag.CommandLine, *specPath != "")
	if use("topo") {
		spec.Topology.Family = *topoName
	}
	if use("n") {
		spec.Topology.N = *n
	}
	if use("bridge") {
		spec.Protocol.Name = *bridgeProto
	}
	if use("workload") {
		spec.Workload.Kind = *workload
	}
	if use("seed") {
		spec.Seed = *seed
	}
	// Proxy is an arppath knob; merge it into the config extension so a
	// spec's other settings (lock timeouts, ...) survive the override.
	if use("proxy") && (spec.Protocol.Name == "" || spec.Protocol.Name == "arppath") {
		if err := spec.Protocol.SetOption("proxy", *proxy); err != nil {
			fmt.Fprintf(os.Stderr, "arppath-sim: %v\n", err)
			os.Exit(2)
		}
	}

	switch spec.Workload.Kind {
	case "ping", "stream", "allpairs", "matrix":
	default:
		fmt.Fprintf(os.Stderr, "arppath-sim: unknown workload %q\n", spec.Workload.Kind)
		os.Exit(2)
	}

	runner := fabric.Runner{Spec: spec}
	if *traceFlag {
		runner.TraceTo = os.Stderr
	}
	if _, err := runner.Run(); err != nil {
		if errors.Is(err, fabric.ErrIncomplete) {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "arppath-sim: %v\n", err)
		os.Exit(2)
	}
}
