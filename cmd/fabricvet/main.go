// Command fabricvet runs the fabric's static-analysis suite
// (internal/analysis: determinism, frameownership, hotpath, strictspec
// — see DESIGN.md §14).
//
// Two modes share the analyzers:
//
//	fabricvet ./...                     # standalone: loads packages itself
//	go vet -vettool=$(pwd)/fabricvet ./...   # unitchecker: driven by cmd/go
//
// In vettool mode cmd/go invokes the binary once per package with a
// vet.cfg describing the unit (files, import map, export data), probes
// `-V=full` for a version to key its action cache, and expects
// diagnostics on stderr with exit status 2. Standalone mode mirrors the
// same output contract so CI can parse one format from either entry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// version keys cmd/go's vet action cache. Bump when analyzer behavior
// changes, or cached clean verdicts from the previous binary survive.
const version = "v1"

func main() {
	log := func(err error) {
		fmt.Fprintf(os.Stderr, "fabricvet: %v\n", err)
		os.Exit(1)
	}

	args := os.Args[1:]
	// cmd/go probes the tool's identity before first use.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("fabricvet version %s\n", version)
		return
	}
	// cmd/go asks for supported flags when the user passes vet flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unitchecker mode: the last argument is the unit's config file.
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		if err := runUnit(args[n-1]); err != nil {
			log(err)
		}
		return
	}

	// Standalone mode.
	fs := flag.NewFlagSet("fabricvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fabricvet [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log(err)
	}
	diags := analysis.Run(analysis.All(), pkgs)
	if len(diags) > 0 {
		printDiags(pkgs[0].Fset, diags)
		os.Exit(2)
	}
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
}

// vetConfig is the JSON unit description cmd/go writes next to each
// package's object directory (see cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	ModulePath    string
	ModuleVersion string
	GoVersion     string

	VetxOnly    bool
	VetxOutput  string
	PackageVetx map[string]string

	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) error {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", cfgPath, err)
	}

	// cmd/go requires the facts output to exist even on success; the
	// suite computes no cross-package facts, so an empty file suffices.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if cfg.VetxOnly {
		return writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return writeVetx()
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		return fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags := analysis.Run(analysis.All(), []*analysis.Package{pkg})
	if err := writeVetx(); err != nil {
		return err
	}
	if len(diags) > 0 {
		printDiags(fset, diags)
		os.Exit(2)
	}
	return nil
}
