// Command benchdiff is the CI bench-regression gate: it compares a fresh
// bench artifact against its committed baseline and fails when any
// comparable record moved — exactly for deterministic columns, beyond a
// tolerance for wall-clock throughput.
//
// Usage:
//
//	benchdiff -baseline bench/BENCH_scale.json -current BENCH_scale.json [-tolerance 0.10]
//
// The artifact schema is detected from the key fields present in the
// records, so the same binary gates every BENCH_*.json the repo
// produces:
//
//   - scale (BENCH_scale.json): records pair by (bridges, shards,
//     gomaxprocs); events, delivered and the coordination counters
//     (windows, barriers, exchanged) must match exactly, events_per_sec
//     is tolerance-gated (regressions only — improvements pass
//     silently). When GOMAXPROCS==1 only shards==1 throughput is
//     compared and the rest is reported as skipped (deterministic
//     columns still compare). Current-side records at GOMAXPROCS values
//     the baseline lacks are simply unpaired — a 1-core-recorded
//     baseline coexists with a multi-core matrix.
//   - allpath (BENCH_allpath.json): records pair by (pattern,
//     protocol); every retained column is deterministic and must match
//     exactly.
//   - tables (BENCH_tables.json): records pair by (variant, policy,
//     capacity); every retained column is deterministic and must match
//     exactly.
//
// Machine-dependent fields (wall_ns, wake_ns, lookahead_ns,
// frames_per_sec) are never compared. A deterministic mismatch means
// the workload itself changed, which requires re-recording the
// baseline.
//
// A second mode gates the multi-core speedup claim against the current
// artifact alone:
//
//	benchdiff -speedup -current BENCH_scale.json [-min-speedup 2.0] [-speedup-shards 4]
//
// For every (bridges, gomaxprocs) group with gomaxprocs >= the target
// shard count, the wall clock at shards=1 must be at least min-speedup
// times the wall clock at the target shard count. Groups below the
// GOMAXPROCS threshold — and artifacts that have none, i.e. single-core
// runners — skip cleanly with exit 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

type record = map[string]any

// schema describes how one artifact kind pairs and compares.
type schema struct {
	name     string
	keys     []string        // pairing fields, also exempt from comparison
	tolerant map[string]bool // throughput fields gated by -tolerance
	// skipMultiShard: on a single-core runner, throughput of multi-shard
	// records is not reproducible; compare their deterministic columns
	// only.
	skipMultiShard bool
}

var schemas = []schema{
	{name: "tables", keys: []string{"variant", "policy", "capacity"}},
	{name: "allpath", keys: []string{"pattern", "protocol"}},
	{
		name: "scale", keys: []string{"bridges", "shards", "gomaxprocs"},
		tolerant:       map[string]bool{"events_per_sec": true},
		skipMultiShard: true,
	},
}

// ignored fields are machine- or environment-dependent in every schema.
var ignored = map[string]bool{
	"gomaxprocs":     true, // pairing key in scale; machine detail elsewhere
	"wall_ns":        true,
	"wake_ns":        true,
	"lookahead_ns":   true,
	"frames_per_sec": true,
}

func load(path string) ([]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []record
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// detect picks the schema whose key fields are all present.
func detect(rs []record) (schema, error) {
	if len(rs) == 0 {
		return schema{}, fmt.Errorf("empty artifact")
	}
	for _, s := range schemas {
		ok := true
		for _, k := range s.keys {
			if _, present := rs[0][k]; !present {
				ok = false
				break
			}
		}
		if ok {
			return s, nil
		}
	}
	return schema{}, fmt.Errorf("records match no known schema (fields: %v)", fieldNames(rs[0]))
}

func fieldNames(r record) []string {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func (s schema) pairKey(r record) string {
	parts := make([]string, len(s.keys))
	for i, k := range s.keys {
		parts[i] = fmt.Sprintf("%s=%v", k, r[k])
	}
	return strings.Join(parts, " ")
}

// runSpeedupGate asserts the multi-core wall-clock claim on one scale
// artifact: within every (bridges, gomaxprocs) group whose gomaxprocs can
// actually exercise atShards workers, shards=1 wall clock must be at
// least minSpeedup times the shards=atShards wall clock. Exits 0 with a
// skip notice when no group qualifies (single-core matrix).
func runSpeedupGate(path string, minSpeedup float64, atShards int) {
	rs, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	num := func(r record, k string) float64 { v, _ := r[k].(float64); return v }
	type group struct{ wall1, wallK float64 }
	groups := make(map[string]*group)
	for _, r := range rs {
		gmp := int(num(r, "gomaxprocs"))
		if gmp < atShards {
			continue
		}
		key := fmt.Sprintf("bridges=%v gomaxprocs=%d", r["bridges"], gmp)
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		switch int(num(r, "shards")) {
		case 1:
			g.wall1 = num(r, "wall_ns")
		case atShards:
			g.wallK = num(r, "wall_ns")
		}
	}
	keys := make([]string, 0, len(groups))
	for k, g := range groups {
		if g.wall1 > 0 && g.wallK > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		fmt.Printf("benchdiff: skip speedup gate: %s has no GOMAXPROCS>=%d shard-1/shard-%d pairs (single-core matrix)\n",
			path, atShards, atShards)
		return
	}
	sort.Strings(keys)
	failed := false
	for _, k := range keys {
		g := groups[k]
		speedup := g.wall1 / g.wallK
		verdict := "ok"
		if speedup < minSpeedup {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchdiff: %s %s: %d-shard speedup %.2fx (want >= %.2fx; wall %.0fms -> %.0fms)\n",
			verdict, k, atShards, speedup, minSpeedup, g.wall1/1e6, g.wallK/1e6)
	}
	if failed {
		os.Exit(1)
	}
}

func main() {
	baseline := flag.String("baseline", "bench/BENCH_scale.json", "committed baseline artifact")
	current := flag.String("current", "BENCH_scale.json", "freshly produced artifact")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional throughput regression")
	speedup := flag.Bool("speedup", false, "gate multi-core speedup within -current instead of diffing against -baseline")
	minSpeedup := flag.Float64("min-speedup", 2.0, "required shards-1 / shards-N wall-clock ratio for -speedup")
	speedupShards := flag.Int("speedup-shards", 4, "shard count whose speedup -speedup asserts")
	flag.Parse()

	if *speedup {
		runSpeedupGate(*current, *minSpeedup, *speedupShards)
		return
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	sch, err := detect(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	if curSch, err := detect(cur); err != nil || curSch.name != sch.name {
		fmt.Fprintf(os.Stderr, "benchdiff: %s is not a %s artifact\n", *current, sch.name)
		os.Exit(2)
	}

	curBy := make(map[string]record, len(cur))
	for _, r := range cur {
		curBy[sch.pairKey(r)] = r
	}

	singleCore := runtime.GOMAXPROCS(0) == 1
	failed := false
	compared := 0
	for _, b := range base {
		key := sch.pairKey(b)
		c, ok := curBy[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s: record missing from %s\n", key, *current)
			failed = true
			continue
		}
		isKey := map[string]bool{}
		for _, k := range sch.keys {
			isKey[k] = true
		}
		exactOK := true
		for _, field := range fieldNames(b) {
			if ignored[field] || sch.tolerant[field] || isKey[field] {
				continue
			}
			if bv, cv := b[field], c[field]; bv != cv {
				fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s: deterministic column %s moved (%v -> %v) — workload changed, re-record the baseline\n",
					key, field, bv, cv)
				exactOK = false
				failed = true
			}
		}
		if !exactOK {
			continue
		}
		compared++
		if len(sch.tolerant) == 0 {
			fmt.Printf("benchdiff: ok %s: deterministic columns match\n", key)
			continue
		}
		if sch.skipMultiShard && singleCore {
			if shards, _ := b["shards"].(float64); shards != 1 {
				fmt.Printf("benchdiff: skip %s throughput: GOMAXPROCS=1 cannot reproduce multi-core numbers\n", key)
				continue
			}
		}
		for field := range sch.tolerant {
			bv, _ := b[field].(float64)
			cv, _ := c[field].(float64)
			if bv == 0 {
				continue
			}
			ratio := cv / bv
			verdict := "ok"
			if ratio < 1.0-*tolerance {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("benchdiff: %s %s: %s %.0f -> %.0f (%.1f%%)\n",
				verdict, key, field, bv, cv, 100*(ratio-1))
		}
	}
	if compared == 0 && !failed {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL: no records compared")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
