// Command benchdiff is the CI bench-regression gate: it compares a fresh
// BENCH_scale.json against the committed baseline and fails when
// events/s regressed beyond tolerance on any comparable record.
//
// Usage:
//
//	benchdiff -baseline bench/BENCH_scale.json -current BENCH_scale.json [-tolerance 0.10]
//
// Records pair by (bridges, shards). Wall-clock figures are machine
// dependent, so the gate only fires on regressions past the tolerance;
// improvements and small wobbles pass silently (and are reported).
//
// The committed baseline was recorded on a multi-core box; a single-core
// CI runner cannot reproduce multi-shard numbers (shard workers would
// time-slice one core). When GOMAXPROCS==1, only shards==1 records are
// compared and the rest are reported as skipped. The deterministic
// columns (events, delivered) are compared unconditionally — those never
// depend on the machine, and a mismatch means the workload itself
// changed, which requires re-recording the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
)

// record mirrors pkg/fabric's benchRecord (the BENCH_scale.json schema).
type record struct {
	Bridges      int     `json:"bridges"`
	Shards       int     `json:"shards"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Events       uint64  `json:"events"`
	Delivered    int     `json:"delivered"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func load(path string) ([]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []record
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

func main() {
	baseline := flag.String("baseline", "bench/BENCH_scale.json", "committed baseline artifact")
	current := flag.String("current", "BENCH_scale.json", "freshly produced artifact")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional events/s regression")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	curBy := make(map[[2]int]record, len(cur))
	for _, r := range cur {
		curBy[[2]int{r.Bridges, r.Shards}] = r
	}

	singleCore := runtime.GOMAXPROCS(0) == 1
	failed := false
	compared := 0
	for _, b := range base {
		c, ok := curBy[[2]int{b.Bridges, b.Shards}]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL bridges=%d shards=%d: record missing from %s\n",
				b.Bridges, b.Shards, *current)
			failed = true
			continue
		}
		if c.Events != b.Events || c.Delivered != b.Delivered {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL bridges=%d shards=%d: deterministic columns moved (events %d->%d, delivered %d->%d) — workload changed, re-record the baseline\n",
				b.Bridges, b.Shards, b.Events, c.Events, b.Delivered, c.Delivered)
			failed = true
			continue
		}
		if singleCore && b.Shards != 1 {
			fmt.Printf("benchdiff: skip bridges=%d shards=%d: GOMAXPROCS=1 cannot reproduce multi-core numbers\n",
				b.Bridges, b.Shards)
			continue
		}
		compared++
		ratio := c.EventsPerSec / b.EventsPerSec
		verdict := "ok"
		if ratio < 1.0-*tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchdiff: %s bridges=%d shards=%d: %.0f -> %.0f events/s (%.1f%%)\n",
			verdict, b.Bridges, b.Shards, b.EventsPerSec, c.EventsPerSec, 100*(ratio-1))
	}
	if compared == 0 && !failed {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL: no records compared")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
