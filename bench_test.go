package repro

// The benchmark harness: one testing.B benchmark per figure and table of
// the paper's evaluation (DESIGN.md §4). Each benchmark runs the same
// experiment code the cmd/ tools print, and reports the figure's headline
// quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number in EXPERIMENTS.md. Absolute values come from
// the simulated testbed (see the substitution table in DESIGN.md); the
// shapes — who wins, by what factor — are the reproduction targets.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/layers"
	"repro/internal/topo"
)

// BenchmarkFigure1Discovery regenerates Figure 1: the ARP-Path discovery
// walkthrough on the 5-bridge mesh. Reported metric: the ARP round trip
// that sets the path up.
func BenchmarkFigure1Discovery(b *testing.B) {
	var last *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFigure1(1)
	}
	b.ReportMetric(float64(last.DiscoveryTime.Microseconds()), "discovery-µs")
	b.ReportMetric(float64(len(last.Path)-1), "path-hops")
}

// BenchmarkFigure2ArpPathVsSTP regenerates Figure 2: the latency
// comparison between ARP-Path and STP on the demo testbed. Reported
// metrics: mean steady-state RTTs on the slow-diagonal profile and the
// STP/ARP-Path latency ratio.
func BenchmarkFigure2ArpPathVsSTP(b *testing.B) {
	cfg := experiments.DefaultFigure2Config()
	cfg.Pings = 20
	var rows []experiments.Figure2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunFigure2(cfg)
	}
	var ap, st time.Duration
	for _, r := range rows {
		if r.Profile != topo.ProfileSlowDiagonal {
			continue
		}
		switch r.Protocol {
		case topo.ARPPath:
			ap = r.RTTs.Mean()
		case topo.STP:
			st = r.RTTs.Mean()
		}
	}
	b.ReportMetric(float64(ap.Microseconds()), "arppath-rtt-µs")
	b.ReportMetric(float64(st.Microseconds()), "stp-rtt-µs")
	if ap > 0 {
		b.ReportMetric(float64(st)/float64(ap), "stp/arppath-ratio")
	}
}

// BenchmarkFigure3PathRepair regenerates Figure 3: video streaming under
// successive link failures. Reported metrics: the worst per-failure
// repair interruption under ARP-Path and the total stall.
func BenchmarkFigure3PathRepair(b *testing.B) {
	cfg := experiments.DefaultFigure3Config()
	cfg.StreamSize = 8 << 20
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure3(cfg, topo.ARPPath)
	}
	var worst time.Duration
	for _, f := range res.Failures {
		if f.RepairTime > worst {
			worst = f.RepairTime
		}
	}
	b.ReportMetric(float64(worst.Milliseconds()), "worst-repair-ms")
	b.ReportMetric(float64(res.Report.TotalStall.Milliseconds()), "total-stall-ms")
	b.ReportMetric(float64(len(res.Failures)), "failures")
}

// BenchmarkFigure3STPBaseline runs the same scenario under 802.1D for the
// contrast column of Figure 3 (one failure; default timers).
func BenchmarkFigure3STPBaseline(b *testing.B) {
	cfg := experiments.DefaultFigure3Config()
	cfg.StreamSize = 8 << 20
	cfg.FailureTimes = cfg.FailureTimes[:1]
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure3(cfg, topo.STP)
	}
	if len(res.Failures) > 0 {
		b.ReportMetric(float64(res.Failures[0].RepairTime.Milliseconds()), "reconvergence-ms")
	}
}

// BenchmarkTableProperties regenerates T1: loop freedom and no blocked
// links on random topologies.
func BenchmarkTableProperties(b *testing.B) {
	var rows []experiments.T1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunT1Properties(1, 4)
	}
	var copies, bound uint64
	var stpBlocked int
	for _, r := range rows {
		copies += r.FloodCopies
		bound += r.CopyBound + uint64(r.Bridges)
		stpBlocked += r.STPBlocked
	}
	b.ReportMetric(float64(copies)/float64(bound), "flood/bound")
	b.ReportMetric(float64(stpBlocked), "stp-blocked-ports")
}

// BenchmarkTableLoadDistribution regenerates T2: link usage of concurrent
// flows on a fat tree, ARP-Path vs STP.
func BenchmarkTableLoadDistribution(b *testing.B) {
	var ap, st *experiments.T2Result
	for i := 0; i < b.N; i++ {
		ap = experiments.RunT2Load(1, topo.ARPPath)
		st = experiments.RunT2Load(1, topo.STP)
	}
	b.ReportMetric(float64(ap.UsedLinks), "arppath-links")
	b.ReportMetric(float64(st.UsedLinks), "stp-links")
	b.ReportMetric(ap.Jain, "arppath-jain")
	b.ReportMetric(st.Jain, "stp-jain")
}

// BenchmarkTableProxyScaling regenerates T3: ARP broadcast suppression by
// the in-switch proxy.
func BenchmarkTableProxyScaling(b *testing.B) {
	var rows []experiments.T3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunT3Proxy(1, []int{8})
	}
	var off, on float64
	for _, r := range rows {
		if r.Proxy {
			on = r.PerARP
		} else {
			off = r.PerARP
		}
	}
	b.ReportMetric(off, "broadcasts-per-arp")
	b.ReportMetric(on, "broadcasts-per-arp-proxied")
	if on > 0 {
		b.ReportMetric(off/on, "suppression-ratio")
	}
}

// BenchmarkTableRepairAblation regenerates T4: recovery time of ARP-Path
// repair vs STP reconvergence vs no repair at all.
func BenchmarkTableRepairAblation(b *testing.B) {
	var rows []experiments.T4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunT4Repair(1)
	}
	for _, r := range rows {
		switch r.Variant {
		case "arp-path (repair on)":
			b.ReportMetric(float64(r.RepairTime.Milliseconds()), "arppath-repair-ms")
		case "stp (default timers)":
			b.ReportMetric(float64(r.RepairTime.Milliseconds()), "stp-repair-ms")
		case "stp (fast timers)":
			b.ReportMetric(float64(r.RepairTime.Milliseconds()), "stp-fast-repair-ms")
		}
	}
}

// BenchmarkTableLockWindow regenerates T5: discovery health vs the lock
// window on a high-delay ring.
func BenchmarkTableLockWindow(b *testing.B) {
	var rows []experiments.T5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunT5LockWindow(1, []time.Duration{time.Millisecond, 200 * time.Millisecond})
	}
	b.ReportMetric(float64(rows[0].Repairs), "short-window-repairs")
	b.ReportMetric(float64(rows[1].Repairs), "default-window-repairs")
	b.ReportMetric(float64(rows[0].Lost), "short-window-lost")
}

// BenchmarkTableStateSize regenerates T6: forwarding state per bridge,
// ARP-Path vs a learning FIB under STP.
func BenchmarkTableStateSize(b *testing.B) {
	var rows []experiments.T6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunT6TableSize(1, []int{16})
	}
	b.ReportMetric(rows[0].ARPPathMean, "arppath-entries")
	b.ReportMetric(rows[0].STPMean, "stp-entries")
}

// establishedLine builds a line of n ARP-Path bridges with hosts H1/H2 at
// the ends, establishes the H1↔H2 path with one ping, and returns the
// built network plus a pre-serialized unicast data frame H1→H2 (unknown
// IP protocol, so H2 counts and drops it without replying).
func establishedLine(b testing.TB, n int) (*topo.Built, []byte) {
	b.Helper()
	return establishedLineSharded(b, n, 1)
}

// establishedLineSharded is establishedLine on a partitioned fabric: the
// line is split across the given number of engine shards, so steady-state
// forwarding exercises the parallel coordinator's windows and the
// cross-shard exchange on every frame.
func establishedLineSharded(b testing.TB, n, shards int) (*topo.Built, []byte) {
	b.Helper()
	opts := topo.DefaultOptions(topo.ARPPath, 1)
	opts.Shards = shards
	built := topo.Line(opts, n)
	h1, h2 := built.Host("H1"), built.Host("H2")
	ok := false
	built.Engine.At(built.Now(), func() {
		h1.Ping(h2.IP(), 0, time.Second, func(host.PingResult) { ok = true })
	})
	built.RunFor(2 * time.Second)
	if !ok {
		b.Fatal("path establishment failed")
	}
	frame, err := layers.Serialize(
		&layers.Ethernet{Dst: h2.MAC(), Src: h1.MAC(), EtherType: layers.EtherTypeIPv4},
		&layers.IPv4{TTL: 64, Protocol: 253, Src: h1.IP(), Dst: h2.IP()},
		layers.Payload(make([]byte, 64)),
	)
	if err != nil {
		b.Fatal(err)
	}
	return built, frame
}

// benchForward drives one pre-serialized frame per iteration through an
// established line of n bridges and gates the steady-state allocation
// count. This is the zero-allocation dataplane contract: once paths are
// locked, forwarding a unicast frame across the fabric must not allocate.
func benchForward(b *testing.B, n int) {
	built, frame := establishedLine(b, n)
	src := built.Host("H1").Port()
	rx0 := built.Host("H2").Stats().FramesRx
	// Warm the pools (frame buffers, in-flight events) before measuring.
	for i := 0; i < 100; i++ {
		src.Send(frame)
		built.Net.Network.Run()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Send(frame)
		built.Net.Network.Run()
	}
	b.StopTimer()
	if got := built.Host("H2").Stats().FramesRx - rx0; got != uint64(b.N)+100 {
		b.Fatalf("delivered %d of %d frames", got, b.N+100)
	}
}

// BenchmarkForwardSingleHop measures one bridge forwarding an established
// unicast flow: H1 — S1 — H2. allocs/op must be 0 in steady state.
func BenchmarkForwardSingleHop(b *testing.B) { benchForward(b, 1) }

// BenchmarkForwardChain16 traverses 16 bridges per frame: the per-hop cost
// of the parse-once/copy-never dataplane. allocs/op must be 0.
func BenchmarkForwardChain16(b *testing.B) { benchForward(b, 16) }

// BenchmarkTableChurn10k hammers the locking table with a 10k-host working
// set: lock, confirm, look up, and refresh cycling through the population,
// with expiry pressure from advancing time. allocs/op must be 0 once the
// table has grown to its steady-state size.
func BenchmarkTableChurn10k(b *testing.B) {
	built, _ := establishedLine(b, 1)
	port := built.Host("H1").Port()
	tbl := core.NewLockTable(200*time.Millisecond, 120*time.Second)
	const hosts = 10_000
	macs := make([]layers.MAC, hosts)
	for i := range macs {
		macs[i] = layers.HostMAC(i + 1)
	}
	for i, m := range macs { // pre-grow to steady state
		tbl.Learn(m, port, time.Duration(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := macs[i%hosts]
		now := time.Duration(i) * time.Microsecond
		tbl.Lock(m, port, now)
		tbl.Learn(m, port, now)
		if _, ok := tbl.Get(m, now); !ok {
			b.Fatal("entry vanished")
		}
		tbl.Refresh(m, now)
	}
}

// BenchmarkFabricForwardThroughput is the benchmark form of
// `fabricbench -exp forward`: wall-clock forwarding rate on the fat-tree
// mesh with every path established.
func BenchmarkFabricForwardThroughput(b *testing.B) {
	var res *experiments.ForwardResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunForwardBench(1, 20_000)
	}
	b.ReportMetric(res.FramesPerSec, "frames/s")
	b.ReportMetric(res.HopsPerSec, "hops/s")
}

// BenchmarkEndToEndPingEstablished measures the steady-state forwarding
// cost of the simulator+protocol stack (engineering hygiene, not a paper
// figure): one ping across the Figure 2 fabric on an established path.
func BenchmarkEndToEndPingEstablished(b *testing.B) {
	n := Figure2Topology(1, "arppath", "uniform")
	a, hostB := n.Host("A"), n.Host("B")
	// Establish the path once.
	n.Engine.At(n.Now(), func() {
		a.Ping(hostB.IP(), 56, time.Second, func(PingResult) {})
	})
	n.RunFor(time.Second)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Engine.At(n.Now(), func() {
			a.Ping(hostB.IP(), 56, time.Second, func(PingResult) {})
		})
		n.RunFor(time.Millisecond)
	}
}
