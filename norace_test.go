//go:build !race

package repro

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
