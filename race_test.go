//go:build race

package repro

// raceEnabled reports that this binary was built with -race. The race
// detector's instrumentation allocates on its own, so allocation gates
// skip themselves under it (the plain CI test job still enforces them).
const raceEnabled = true
