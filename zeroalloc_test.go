package repro

// The zero-allocation gate (DESIGN.md §3): once paths are established,
// forwarding a unicast frame across the fabric must not allocate — not
// in the engine (pooled events), not in the links (pooled frames and
// flights), not in the bridges (packed-key table ops on a pre-decoded
// view). The benchmarks report the same property; this test enforces it
// on every CI run without -bench.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowpath"
	hostpkg "repro/internal/host"
	"repro/internal/learning"
	"repro/internal/netsim"
	"repro/internal/tables"
)

func TestSteadyStateForwardingDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race job")
	}
	for _, tc := range []struct {
		name    string
		bridges int
	}{
		{"SingleHop", 1},
		{"Chain16", 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			built, frame := establishedLine(t, tc.bridges)
			src := built.Host("H1").Port()
			// Warm every pool: frame buffers, flights, engine events.
			for i := 0; i < 200; i++ {
				src.Send(frame)
				built.Net.Network.Run()
			}
			rx0 := built.Host("H2").Stats().FramesRx
			const runs = 500
			allocs := testing.AllocsPerRun(runs, func() {
				src.Send(frame)
				built.Net.Network.Run()
			})
			if allocs != 0 {
				t.Fatalf("steady-state forward allocates %.2f/op, want 0", allocs)
			}
			// AllocsPerRun executes runs+1 iterations.
			if got := built.Host("H2").Stats().FramesRx - rx0; got != runs+1 {
				t.Fatalf("delivered %d frames, want %d", got, runs+1)
			}
		})
	}
}

// TestBoundedTableChurnDoesNotAllocate extends the gate to the bounded
// forwarding tables (DESIGN.md §12): steady-state churn — a fresh key
// into a full table, forcing an eviction and recycling a tracker node —
// must not allocate in any of the three tables, under either policy. The
// tracker's slice-arena free list and the map's delete-then-insert
// balance are what make a million-conversation run flat.
func TestBoundedTableChurnDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race job")
	}
	net := netsim.NewNetwork(1)
	a, b := hostpkg.New(net, "a", 1), hostpkg.New(net, "b", 2)
	port := net.Connect(a, b, netsim.DefaultLinkConfig()).A()

	for _, policy := range []tables.Policy{tables.PolicyLRU, tables.PolicyClock} {
		bound := tables.Config{Capacity: 512, Policy: policy}
		t.Run("LockTable/"+policy.String(), func(t *testing.T) {
			tb := core.NewBoundedLockTable(time.Millisecond, time.Hour, bound)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.LearnKey(key, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn() // fill past capacity, warm the arena
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded LockTable churn allocates %.2f/op, want 0", allocs)
			}
		})
		t.Run("PairTable/"+policy.String(), func(t *testing.T) {
			tb := flowpath.NewBoundedPairTable(time.Millisecond, time.Hour, bound, false)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.Learn(flowpath.PairKey{Hi: key, Lo: key ^ 0xFFFF}, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn()
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded PairTable churn allocates %.2f/op, want 0", allocs)
			}
		})
		t.Run("LearningTable/"+policy.String(), func(t *testing.T) {
			tb := learning.NewBoundedTable(time.Hour, bound)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.LearnKey(key, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn()
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded learning.Table churn allocates %.2f/op, want 0", allocs)
			}
		})
	}
}

// TestEstablishedPathStaysUp is the functional sibling of the allocation
// gate: the frames pumped above must actually arrive, and keep arriving
// when the steady state is perturbed by re-establishment traffic.
func TestEstablishedPathStaysUp(t *testing.T) {
	built, frame := establishedLine(t, 4)
	h2 := built.Host("H2")
	src := built.Host("H1").Port()
	for i := 0; i < 50; i++ {
		src.Send(frame)
		built.Net.Network.Run()
	}
	rx := h2.Stats().FramesRx
	if rx < 50 {
		t.Fatalf("FramesRx = %d, want ≥ 50", rx)
	}
	// A fresh ping (broadcast ARP + unicast echo) must coexist with the
	// pooled fast path.
	ok := false
	built.Engine.At(built.Now(), func() {
		built.Host("H1").Ping(h2.IP(), 0, time.Second, func(r PingResult) { ok = r.Err == nil })
	})
	built.RunFor(2 * time.Second)
	if !ok {
		t.Fatal("ping across warmed fabric failed")
	}
}
