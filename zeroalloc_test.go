package repro

// The zero-allocation gate (DESIGN.md §3): once paths are established,
// forwarding a unicast frame across the fabric must not allocate — not
// in the engine (pooled events), not in the links (pooled frames and
// flights), not in the bridges (packed-key table ops on a pre-decoded
// view). The benchmarks report the same property; this test enforces it
// on every CI run without -bench.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowpath"
	hostpkg "repro/internal/host"
	"repro/internal/learning"
	"repro/internal/netsim"
	"repro/internal/tables"
)

func TestSteadyStateForwardingDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race job")
	}
	for _, tc := range []struct {
		name    string
		bridges int
	}{
		{"SingleHop", 1},
		{"Chain16", 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			built, frame := establishedLine(t, tc.bridges)
			src := built.Host("H1").Port()
			// Warm every pool: frame buffers, flights, engine events.
			for i := 0; i < 200; i++ {
				src.Send(frame)
				built.Net.Network.Run()
			}
			rx0 := built.Host("H2").Stats().FramesRx
			const runs = 500
			allocs := testing.AllocsPerRun(runs, func() {
				src.Send(frame)
				built.Net.Network.Run()
			})
			if allocs != 0 {
				t.Fatalf("steady-state forward allocates %.2f/op, want 0", allocs)
			}
			// AllocsPerRun executes runs+1 iterations.
			if got := built.Host("H2").Stats().FramesRx - rx0; got != runs+1 {
				t.Fatalf("delivered %d frames, want %d", got, runs+1)
			}
		})
	}
}

// TestBoundedTableChurnDoesNotAllocate extends the gate to the bounded
// forwarding tables (DESIGN.md §12): steady-state churn — a fresh key
// into a full table, forcing an eviction and recycling a tracker node —
// must not allocate in any of the three tables, under either policy. The
// tracker's slice-arena free list and the map's delete-then-insert
// balance are what make a million-conversation run flat.
func TestBoundedTableChurnDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race job")
	}
	net := netsim.NewNetwork(1)
	a, b := hostpkg.New(net, "a", 1), hostpkg.New(net, "b", 2)
	port := net.Connect(a, b, netsim.DefaultLinkConfig()).A()

	for _, policy := range []tables.Policy{tables.PolicyLRU, tables.PolicyClock} {
		bound := tables.Config{Capacity: 512, Policy: policy}
		t.Run("LockTable/"+policy.String(), func(t *testing.T) {
			tb := core.NewBoundedLockTable(time.Millisecond, time.Hour, bound)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.LearnKey(key, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn() // fill past capacity, warm the arena
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded LockTable churn allocates %.2f/op, want 0", allocs)
			}
		})
		t.Run("PairTable/"+policy.String(), func(t *testing.T) {
			tb := flowpath.NewBoundedPairTable(time.Millisecond, time.Hour, bound, false)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.Learn(flowpath.PairKey{Hi: key, Lo: key ^ 0xFFFF}, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn()
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded PairTable churn allocates %.2f/op, want 0", allocs)
			}
		})
		t.Run("LearningTable/"+policy.String(), func(t *testing.T) {
			tb := learning.NewBoundedTable(time.Hour, bound)
			now, key := 10*time.Millisecond, uint64(1)<<32
			churn := func() {
				key++
				now += 2 * time.Millisecond
				tb.LearnKey(key, port, now)
			}
			for i := 0; i < 2048; i++ {
				churn()
			}
			if allocs := testing.AllocsPerRun(2000, churn); allocs != 0 {
				t.Fatalf("bounded learning.Table churn allocates %.2f/op, want 0", allocs)
			}
		})
	}
}

// TestShardedSteadyStateCoordinationDoesNotAllocate extends the gate to
// the parallel coordinator (DESIGN.md §8): once paths are established on
// a partitioned line, steady-state forwarding — windows dispatched
// through the epoch barrier, cross-shard arrivals drained by the
// destination workers — must stay allocation-free per window. The only
// tolerated mallocs are the per-run worker spawns (one goroutine per
// shard per Run call, amortized over that run's windows), which is why
// the gate is a mallocs-per-window budget from runtime.MemStats rather
// than testing.AllocsPerRun: spawning goroutines inside AllocsPerRun's
// callback would charge scheduler bookkeeping to every iteration.
func TestShardedSteadyStateCoordinationDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race job")
	}
	built, frame := establishedLineSharded(t, 8, 2)
	if k, ok := built.Net.Network.Sharded(); !ok || k != 2 {
		t.Fatalf("expected a 2-shard line, got %d shards", k)
	}
	src := built.Host("H1").Port()
	net := built.Net.Network
	// Warm every pool: frame buffers, flights, remote flights, engine
	// events, tap arenas, worker scheduler state.
	for i := 0; i < 200; i++ {
		src.Send(frame)
		net.Run()
	}
	rx0 := built.Host("H2").Stats().FramesRx
	w0 := net.CoordStats()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const runs = 300
	for i := 0; i < runs; i++ {
		src.Send(frame)
		net.Run()
	}
	runtime.ReadMemStats(&m1)
	w1 := net.CoordStats()
	windows := w1.Windows - w0.Windows
	if windows < 2*runs {
		// Each end-to-end frame traversal takes several lookahead windows
		// on a 2-shard line; a collapse here means the workload stopped
		// exercising the coordinator and the gate is vacuous.
		t.Fatalf("only %d windows over %d runs — workload no longer drives the coordinator", windows, runs)
	}
	if got := built.Host("H2").Stats().FramesRx - rx0; got != runs {
		t.Fatalf("delivered %d frames, want %d", got, runs)
	}
	perWindow := float64(m1.Mallocs-m0.Mallocs) / float64(windows)
	if perWindow >= 1.0 {
		t.Fatalf("sharded steady state allocates %.3f objects/window (%d mallocs over %d windows), want < 1",
			perWindow, m1.Mallocs-m0.Mallocs, windows)
	}
}

// TestEstablishedPathStaysUp is the functional sibling of the allocation
// gate: the frames pumped above must actually arrive, and keep arriving
// when the steady state is perturbed by re-establishment traffic.
func TestEstablishedPathStaysUp(t *testing.T) {
	built, frame := establishedLine(t, 4)
	h2 := built.Host("H2")
	src := built.Host("H1").Port()
	for i := 0; i < 50; i++ {
		src.Send(frame)
		built.Net.Network.Run()
	}
	rx := h2.Stats().FramesRx
	if rx < 50 {
		t.Fatalf("FramesRx = %d, want ≥ 50", rx)
	}
	// A fresh ping (broadcast ARP + unicast echo) must coexist with the
	// pooled fast path.
	ok := false
	built.Engine.At(built.Now(), func() {
		built.Host("H1").Ping(h2.IP(), 0, time.Second, func(r PingResult) { ok = r.Err == nil })
	})
	built.RunFor(2 * time.Second)
	if !ok {
		t.Fatal("ping across warmed fabric failed")
	}
}
