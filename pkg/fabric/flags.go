package fabric

import "flag"

// FlagOverrides returns the predicate the cmds share for compiling flags
// into a Spec: with no spec file loaded every flag applies (its default
// value is the cmd's default Spec), while on top of a loaded spec only
// flags the user explicitly set override it.
func FlagOverrides(fs *flag.FlagSet, specLoaded bool) func(name string) bool {
	if !specLoaded {
		return func(string) bool { return true }
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return func(name string) bool { return set[name] }
}
