package fabric

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// ErrIncomplete reports a workload that ran but did not finish inside its
// budget (a stuck stream, an unanswered ping train). The Runner has
// already written the human-readable diagnosis to Out; callers translate
// it into a nonzero exit.
var ErrIncomplete = errors.New("fabric: workload did not complete")

// Runner owns the lifecycle every harness shares: compile the Spec,
// build the fabric(s), run the warm-up, drive the workload, collect the
// outputs (tables, trace fingerprints, bench artifacts). The zero value
// plus a Spec is usable; the exported fields tune presentation only —
// nothing in them may change a simulation result.
type Runner struct {
	Spec Spec

	// Out is the report stream (default os.Stdout): tables, sweep
	// verdicts, fingerprints. Err is the side channel (default
	// os.Stderr): wall-clock bench lines.
	Out io.Writer
	Err io.Writer
	// CSV renders tables as CSV instead of aligned text.
	CSV bool
	// Graphs renders the per-scenario ASCII latency graphs of the
	// figure2-demo workload.
	Graphs bool
	// TraceTo, when set, streams a tcpdump-style view of every delivery
	// of the topology-driven workloads (arppath-sim -trace).
	TraceTo io.Writer
	// Jobs is the sweep's worker-pool size (default GOMAXPROCS). A
	// sweep's every per-scenario result is identical at any value.
	Jobs int
	// Verbose prints sweep PASS lines, not just failures.
	Verbose bool
	// Profile records pprof/runtime-trace artifacts around the workload
	// (fabricbench -cpuprofile/-memprofile/-trace). Observation only: a
	// profiled run's outputs are byte-identical to an unprofiled one.
	Profile ProfileOptions
}

// Result is the machine-readable half of a run.
type Result struct {
	// Spec is the fully defaulted spec that ran.
	Spec Spec
	// Tables are the figures/tables the workload produced, in emission
	// order (they were also rendered to Out).
	Tables []*metrics.Table
	// Failures counts failing scenarios of a sweep.
	Failures int
	// Fingerprint digests the trace of every fabric the run built, in
	// build order, when Spec.Verify.Fingerprint is set. Same Spec ⇒ same
	// fingerprint, at any shard count. Fabrics and TraceEvents report
	// what was folded in.
	Fingerprint uint64
	Fabrics     int
	TraceEvents uint64
	// BenchJSON is the scale workload's machine-dependent wall-clock
	// artifact (fabricbench -bench-out).
	BenchJSON []byte
}

// Run executes a Spec with default presentation.
func Run(spec Spec) (*Result, error) {
	r := Runner{Spec: spec}
	return r.Run()
}

// Run compiles the Spec and executes its workload.
//
// Concurrency: one Runner at a time per process. The run wires two pieces
// of driver state — the experiments shard count and the topology OnBuilt
// hook — that are package-level by design (the experiment runners build
// their own fabrics); concurrent Runs would race on them. Sweep workloads
// parallelize internally (Jobs) without touching either.
func (r *Runner) Run() (res *Result, err error) {
	spec, err := r.Spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	out, errw := r.Out, r.Err
	if out == nil {
		out = os.Stdout
	}
	if errw == nil {
		errw = os.Stderr
	}
	jobs := r.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	res = &Result{Spec: spec}

	prevShards := experiments.Shards
	experiments.Shards = spec.Shards
	defer func() { experiments.Shards = prevShards }()

	// Trace fingerprints: every fabric built anywhere in the run — the
	// topology-driven workloads' own, and the ones the experiment runners
	// build internally — gets a tap the moment it exists (before Start,
	// so warm-up traffic is covered too). The sweep computes per-scenario
	// fingerprints itself; Run folds those instead.
	var fps []*netsim.TapFingerprint
	if spec.Verify.Fingerprint && spec.Workload.Kind != "sweep" {
		prev := topo.OnBuilt
		topo.OnBuilt = func(n *topo.Net) {
			fp := netsim.NewTapFingerprint()
			n.Tap(fp.Observe)
			fps = append(fps, fp)
		}
		defer func() { topo.OnBuilt = prev }()
	}

	if r.Profile.enabled() {
		stop, perr := r.Profile.start()
		if perr != nil {
			return nil, perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	switch spec.Workload.Kind {
	case "ping", "stream", "allpairs":
		err = r.runSim(spec, out, res)
	case "matrix":
		err = r.runMatrix(spec, out, res)
	case "figure2-demo":
		err = r.runFigure2Demo(spec, out, res)
	case "path-repair":
		err = r.runPathRepair(spec, out, res)
	case "properties", "load", "proxy", "repair", "lockwindow", "tablesize", "forward", "scale", "allpath", "tables", "all":
		err = r.runBench(spec, out, errw, res)
	case "sweep":
		err = r.runSweep(spec, out, jobs, res)
	case "":
		return nil, fmt.Errorf("fabric: spec has no workload kind")
	default:
		return nil, fmt.Errorf("fabric: unknown workload kind %q", spec.Workload.Kind)
	}
	if err != nil {
		return res, err
	}

	for _, fp := range fps {
		res.Fingerprint = foldFingerprint(res.Fingerprint, fp.Sum())
		res.TraceEvents += fp.Events()
	}
	if len(fps) > 0 {
		res.Fabrics = len(fps)
	}
	if spec.Verify.Fingerprint {
		fmt.Fprintf(out, "trace fingerprint: %#016x (fabrics=%d events=%d)\n",
			res.Fingerprint, res.Fabrics, res.TraceEvents)
	}
	return res, nil
}

// foldFingerprint mixes per-fabric digests order-sensitively (FNV-style),
// so "same fabrics in the same order" is what the combined value pins.
func foldFingerprint(acc, fp uint64) uint64 {
	acc ^= fp
	acc *= 1099511628211
	return acc
}

// emit renders a table to Out the way every harness always has.
func (r *Runner) emit(out io.Writer, res *Result, t *metrics.Table) {
	res.Tables = append(res.Tables, t)
	if r.CSV {
		fmt.Fprint(out, t.CSV())
	} else {
		fmt.Fprintln(out, t)
	}
}
