package fabric

import (
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// runMatrix drives a spec-level traffic matrix on the Spec's topology:
// the seeded flow schedule (hotspot, permutation or weighted pairs) runs
// as TCP-lite transfers over whatever protocol the Spec names — the
// workload that makes per-flow path diversity visible, where all-pairs
// pings only ever exercise one conversation at a time.
func (r *Runner) runMatrix(spec Spec, out io.Writer, res *Result) error {
	opts, err := spec.Options()
	if err != nil {
		return err
	}
	built, err := BuildTopology(opts, spec.Topology)
	if err != nil {
		return err
	}
	hosts := 0
	for i := 1; ; i++ {
		if _, ok := built.Hosts[fmt.Sprintf("H%d", i)]; !ok {
			break
		}
		hosts++
	}
	if hosts < 2 {
		fmt.Fprintln(out, "matrix needs H1..Hn hosts (use ring/grid/fattree/random families)")
		return ErrIncomplete
	}
	w := spec.Workload
	mcfg := experiments.MatrixConfig{
		Pattern:  experiments.MatrixPattern(w.Pattern),
		Hosts:    hosts,
		Flows:    w.Flows,
		Hotspots: w.Hotspots,
		Skew:     w.Skew,
		Bytes:    w.FlowBytes,
		Arrival:  w.Arrival.D(),
	}
	known := false
	for _, p := range experiments.MatrixPatterns() {
		if mcfg.Pattern == p {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("fabric: unknown matrix pattern %q (have: %v)", w.Pattern, experiments.MatrixPatterns())
	}
	flows := experiments.BuildMatrix(mcfg, spec.Seed)
	run := experiments.DriveMatrix(built, flows)

	fmt.Fprintf(out, "topology=%s bridges=%d hosts=%d links=%d protocol=%s seed=%d pattern=%s\n\n",
		spec.Topology.Family, len(built.Bridges), len(built.Hosts), len(built.Links),
		spec.Protocol.Name, spec.Seed, w.Pattern)
	t := metrics.NewTable("traffic matrix ("+w.Pattern+")",
		"flows", "completed", "delivered B", "finish (virt)", "table Σ", "table max", "eff trunks", "max trunk share")
	t.AddRow(run.Flows, run.Completed, run.DeliveredBytes, run.FinishedAt.Round(time.Microsecond),
		run.TableEntries, run.TableMax, fmt.Sprintf("%.1f", run.EffTrunks), fmt.Sprintf("%.3f", run.TrunkShareMax))
	r.emit(out, res, t)
	if run.Completed != run.Flows {
		fmt.Fprintf(out, "%d of %d transfers did not complete\n", run.Flows-run.Completed, run.Flows)
		return ErrIncomplete
	}
	return nil
}
