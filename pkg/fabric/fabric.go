// Package fabric is the public SDK of the reproduction: a declarative,
// JSON-serializable Spec that fully determines a run (topology, protocol
// and per-protocol config, links, seed, warm-up, shards, fault schedule,
// workload and verification knobs), a protocol registry that makes
// bridging protocols pluggable, and a Runner that owns the build →
// warm-up → workload → collect lifecycle every harness shares.
//
// The five cmds (fabricbench, scenario, arppath-sim, arpvstp, pathrepair)
// are thin shells over this package: each compiles its flags into a Spec
// (or loads one with -spec file.json) and hands it to a Runner. A Spec
// plus a seed is a complete, reproducible experiment: same Spec, same
// trace fingerprint, at any shard count.
//
// A minimal run:
//
//	spec := fabric.Spec{
//		Topology: fabric.TopologySpec{Family: "figure2"},
//		Workload: fabric.WorkloadSpec{Kind: "ping"},
//	}
//	res, err := fabric.Run(spec)
//
// Protocols register like database/sql drivers. The three in-tree ones
// (arppath, stp, learning) are registered by init(); a variant registers
// itself and is immediately buildable from any Spec naming it:
//
//	fabric.RegisterProtocol("flow-path", fabric.Constructor{...})
package fabric

import (
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/topo"

	// The All-Path variants (Flow-Path, TCP-Path) register themselves
	// through the protocol registry exactly like an out-of-tree protocol
	// would: importing the SDK is what links them into every harness.
	_ "repro/internal/flowpath"
)

// Re-exported types: the SDK surface an out-of-tree protocol or harness
// needs, without reaching into internal packages.
type (
	// Network is the simulated Ethernet fabric.
	Network = netsim.Network
	// LinkConfig describes a link's rate, delay and queue.
	LinkConfig = netsim.LinkConfig
	// Bridge is the protocol-independent view of a built bridge.
	Bridge = topo.Bridge
	// Built is a built topology: the network plus its named hosts/links.
	Built = topo.Built
	// Options is the compiled, imperative form of a Spec's build half.
	Options = topo.Options
	// Host is a simulated end station.
	Host = host.Host
	// Duration marshals as a human-readable string ("200ms") in specs.
	Duration = topo.Duration
)

// Constructor describes a bridging protocol to the SDK. All hooks operate
// on an opaque config value: a pointer to the protocol's own config type,
// produced by NewConfig and carried through the Spec as a typed JSON
// extension — the builder never learns the concrete type, which is what
// lets out-of-tree variants register without touching it.
type Constructor struct {
	// NewConfig returns a pointer to a zero config value.
	NewConfig func() any
	// Defaults fills unset (zero) fields of cfg field-wise, in place.
	Defaults func(cfg any)
	// WarmUp returns the convergence budget for a fabric built with cfg.
	WarmUp func(cfg any) time.Duration
	// Build constructs one bridge on net.
	Build func(net *Network, name string, numID int, cfg any) Bridge
	// DecodeConfig parses the Spec's JSON extension (strict: unknown
	// fields rejected) into a config pointer. Optional; without it a
	// non-empty extension is an error.
	DecodeConfig func(raw []byte) (any, error)
	// EncodeConfig renders cfg back to canonical JSON. Optional.
	EncodeConfig func(cfg any) ([]byte, error)
}

// RegisterProtocol makes a protocol buildable from every Spec and every
// harness under the given name. It panics on duplicates or incomplete
// constructors (call it from init()).
func RegisterProtocol(name string, c Constructor) {
	topo.RegisterProtocol(topo.Definition{
		Name:          topo.Protocol(name),
		NewConfig:     c.NewConfig,
		ApplyDefaults: c.Defaults,
		WarmUp:        c.WarmUp,
		New:           c.Build,
		DecodeConfig:  c.DecodeConfig,
		EncodeConfig:  c.EncodeConfig,
	})
}

// Protocols lists every registered protocol name, sorted.
func Protocols() []string {
	ps := topo.Protocols()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = string(p)
	}
	return out
}
