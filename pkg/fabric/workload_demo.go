package fabric

import (
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/stp"
	"repro/internal/topo"
)

// runFigure2Demo is the arpvstp harness: the paper's Figure 2 latency
// comparison, ARP-Path vs STP across the delay profiles.
func (r *Runner) runFigure2Demo(spec Spec, out io.Writer, res *Result) error {
	cfg := experiments.DefaultFigure2Config()
	cfg.Seed = spec.Seed
	cfg.Pings = spec.Workload.Pings
	cfg.Interval = spec.Workload.Interval.D()

	rows := experiments.RunFigure2(cfg)
	table := experiments.Figure2Table(rows)
	speedups := experiments.Figure2Speedups(rows)
	if r.CSV {
		res.Tables = append(res.Tables, table, speedups)
		fmt.Fprint(out, table.CSV())
		fmt.Fprint(out, speedups.CSV())
		return nil
	}
	res.Tables = append(res.Tables, table, speedups)
	fmt.Fprintln(out, table)
	fmt.Fprintln(out, speedups)
	if r.Graphs {
		for _, row := range rows {
			fmt.Fprintln(out, row.Series.ASCII(72, 8))
		}
	}
	return nil
}

// runPathRepair is the pathrepair harness: the paper's Figure 3 streaming
// demo under successive link failures, optionally with the STP baseline.
func (r *Runner) runPathRepair(spec Spec, out io.Writer, res *Result) error {
	cfg := experiments.DefaultFigure3Config()
	cfg.Seed = spec.Seed
	cfg.StreamSize = spec.Workload.StreamSize
	cfg.FailureTimes = nil
	for i := 0; i < spec.Workload.Failures; i++ {
		cfg.FailureTimes = append(cfg.FailureTimes, time.Duration(50+100*i)*time.Millisecond)
	}
	if spec.Workload.FastSTP {
		cfg.STPTimers = stp.FastTimers()
	}

	results := []*experiments.Figure3Result{experiments.RunFigure3(cfg, topo.ARPPath)}
	if spec.Workload.WithSTP == nil || *spec.Workload.WithSTP {
		results = append(results, experiments.RunFigure3(cfg, topo.STP))
	}
	table := experiments.Figure3Table(results)
	res.Tables = append(res.Tables, table)
	if r.CSV {
		fmt.Fprint(out, table.CSV())
		return nil
	}
	fmt.Fprintln(out, table)
	for _, fr := range results {
		if fr.Report != nil && fr.Report.Goodput != nil {
			fmt.Fprintln(out, fr.Report.Goodput.ASCII(72, 8))
		}
	}
	return nil
}
