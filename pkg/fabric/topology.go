package fabric

import (
	"fmt"
	"sort"

	"repro/internal/host/app"
	"repro/internal/topo"
)

// TopologyBuilder turns a (defaulted) TopologySpec into a built fabric.
type TopologyBuilder func(opts Options, t TopologySpec) *Built

var topologyFamilies = map[string]TopologyBuilder{}

// RegisterTopology makes a topology family buildable from every Spec
// naming it. The in-tree families register in init(); it panics on
// duplicates.
func RegisterTopology(name string, build TopologyBuilder) {
	if name == "" || build == nil {
		panic("fabric: RegisterTopology with empty name or nil builder")
	}
	if _, dup := topologyFamilies[name]; dup {
		panic(fmt.Sprintf("fabric: topology family %q registered twice", name))
	}
	topologyFamilies[name] = build
}

// TopologyFamilies lists every registered family name, sorted.
func TopologyFamilies() []string {
	names := make([]string, 0, len(topologyFamilies))
	for name := range topologyFamilies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildTopology builds the Spec's topology through the family table.
func BuildTopology(opts Options, t TopologySpec) (*Built, error) {
	build, ok := topologyFamilies[t.Family]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown topology family %q (registered: %v)", t.Family, TopologyFamilies())
	}
	return build(opts, t), nil
}

func defaultStreamSize() int { return app.DefaultStreamConfig().Size }

func init() {
	RegisterTopology("figure1", func(opts Options, _ TopologySpec) *Built {
		return topo.Figure1(opts)
	})
	RegisterTopology("figure2", func(opts Options, t TopologySpec) *Built {
		return topo.Figure2(opts, topo.Figure2Profile(t.Profile))
	})
	RegisterTopology("line", func(opts Options, t TopologySpec) *Built {
		return topo.Line(opts, t.N)
	})
	RegisterTopology("ring", func(opts Options, t TopologySpec) *Built {
		return topo.Ring(opts, t.N)
	})
	RegisterTopology("grid", func(opts Options, t TopologySpec) *Built {
		rows, cols := t.Rows, t.Cols
		if rows == 0 {
			rows = t.N
		}
		if cols == 0 {
			cols = rows
		}
		return topo.Grid(opts, rows, cols)
	})
	RegisterTopology("fattree", func(opts Options, t TopologySpec) *Built {
		return topo.FatTree(opts, t.N)
	})
	RegisterTopology("random", func(opts Options, t TopologySpec) *Built {
		extra := t.ExtraEdges
		if extra == 0 {
			extra = t.N
		}
		return topo.Random(opts, t.N, extra)
	})
	RegisterTopology("erdos-renyi", func(opts Options, t TopologySpec) *Built {
		return topo.ErdosRenyi(opts, t.N, t.P)
	})
	RegisterTopology("ring-of-rings", func(opts Options, t TopologySpec) *Built {
		return topo.RingOfRings(opts, t.Rings, t.RingSize)
	})
	RegisterTopology("random-regular", func(opts Options, t TopologySpec) *Built {
		return topo.RandomRegular(opts, t.N, t.Degree)
	})
}
