package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// SpecVersion is the current Spec schema version. Decoding rejects specs
// from a newer schema; older (or absent) versions upgrade implicitly as
// long as the fields still decode.
const SpecVersion = 1

// Spec declaratively and fully determines a run: what fabric to build,
// which protocol bridges it, what workload to drive and what to verify.
// Every field has an explicit default (WithDefaults); decoding is strict
// (unknown fields are rejected, so a typo fails loudly instead of
// silently running the default experiment).
type Spec struct {
	// Version is the schema version (SpecVersion when omitted).
	Version int `json:"version,omitempty"`
	// Seed fully determines wiring, delays and race outcomes. 0 means
	// the default seed 1 — a JSON spec cannot distinguish absent from
	// zero, so seed 0 itself is not addressable.
	Seed int64 `json:"seed,omitempty"`
	// Topology selects the fabric for the topology-driven workloads
	// (ping, stream, allpairs). The experiment workloads build their own
	// fabrics, as the paper's figures prescribe.
	Topology TopologySpec `json:"topology,omitzero"`
	// Protocol selects the bridging protocol by registry name, with an
	// optional per-protocol config extension.
	Protocol ProtocolSpec `json:"protocol,omitzero"`
	// Link is the default link configuration.
	Link LinkSpec `json:"link,omitzero"`
	// WarmUp is how long the fabric runs before the workload (0 = the
	// protocol's registered convergence budget; WithDefaults fills it).
	WarmUp Duration `json:"warm_up,omitempty"`
	// Shards runs the simulation on that many parallel engine shards.
	// Every figure, table and fingerprint is bit-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Procs is the GOMAXPROCS sweep of the scale experiment: each value
	// re-runs the shard-count matrix at that parallelism so the bench
	// artifact carries a speedup-vs-shards curve per core count. Empty
	// means one pass at the ambient GOMAXPROCS. Deterministic outputs are
	// unaffected (and asserted unchanged across passes).
	Procs []int `json:"procs,omitempty"`
	// Workload selects what runs on the fabric.
	Workload WorkloadSpec `json:"workload,omitzero"`
	// Scenario parameterizes the adversarial sweep (kind "sweep"): the
	// fault-schedule families, seeds per pairing and phase timing.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Verify holds the verification knobs: probe counts for the sweep's
	// eventual-delivery invariant, and the trace fingerprint switch.
	Verify VerifySpec `json:"verify,omitzero"`
}

// TopologySpec names a topology family and its size parameters. Unused
// parameters are ignored by the family; grid reads Rows/Cols falling back
// to N×N, random falls back to N extra edges.
type TopologySpec struct {
	// Family: figure1, figure2, line, ring, grid, fattree, random,
	// erdos-renyi, ring-of-rings, random-regular (RegisterTopology adds
	// more).
	Family string `json:"family,omitempty"`
	// N is the generic size: bridges (line, ring, random, erdos-renyi,
	// random-regular), fat-tree k, grid side.
	N int `json:"n,omitempty"`
	// Rows/Cols size a grid explicitly.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Rings/RingSize size a ring-of-rings.
	Rings    int `json:"rings,omitempty"`
	RingSize int `json:"ring_size,omitempty"`
	// Degree is the random-regular trunk degree.
	Degree int `json:"degree,omitempty"`
	// ExtraEdges is the random family's loop budget (N when omitted).
	ExtraEdges int `json:"extra_edges,omitempty"`
	// P is the Erdős–Rényi edge probability.
	P float64 `json:"p,omitempty"`
	// Profile is the figure2 link-delay profile: uniform, slow-diagonal
	// or asymmetric.
	Profile string `json:"profile,omitempty"`
	// SpareJacks pre-cables every host of the host-per-bridge families
	// with a second, initially-down access link on another edge bridge —
	// the wall jack host-mobility ops re-home stations to. Without it a
	// fabric has no legal host-move targets (fabricserve rejects those
	// ops); builds without mobility leave it off, and the flag changes
	// nothing else about the fabric.
	SpareJacks bool `json:"spare_jacks,omitempty"`
}

// ProtocolSpec selects a registered protocol and carries its config as a
// typed JSON extension, decoded by the protocol's own registered codec.
type ProtocolSpec struct {
	Name string `json:"name,omitempty"`
	// Config is the per-protocol extension, e.g. for arppath:
	// {"lock_timeout":"200ms","proxy":true}. Unknown fields are rejected.
	Config json.RawMessage `json:"config,omitempty"`
}

// LinkSpec is the default link configuration.
type LinkSpec struct {
	// RateBps is the line rate in bits per second.
	RateBps int64 `json:"rate_bps,omitempty"`
	// Delay is the one-way propagation delay.
	Delay Duration `json:"delay,omitempty"`
	// QueueBytes is the per-direction output queue capacity.
	QueueBytes int `json:"queue_bytes,omitempty"`
}

// WorkloadSpec selects what runs on the fabric. Kinds:
//
//   - "ping", "stream", "allpairs" — the simulator workloads on the
//     Spec's topology (arppath-sim)
//   - "matrix" — a spec-level traffic matrix on the Spec's topology:
//     seeded flow arrivals following the hotspot, permutation or
//     weighted-pairs pattern, driven as TCP-lite transfers for any
//     registered protocol
//   - "figure2-demo" — the ARP-Path vs STP latency demo (arpvstp)
//   - "path-repair" — streaming under successive failures (pathrepair)
//   - "properties", "load", "proxy", "repair", "lockwindow",
//     "tablesize", "forward", "scale", "allpath", "tables", "all" — the
//     evaluation tables (fabricbench); "allpath" is the Flow-Path/
//     TCP-Path comparative experiment over the same matrices, "tables"
//     the eviction-pressure capacity sweep
//   - "sweep" — the adversarial scenario sweep (scenario)
type WorkloadSpec struct {
	Kind string `json:"kind,omitempty"`
	// Pings/Interval drive ping-train workloads (ping, figure2-demo).
	Pings    int      `json:"pings,omitempty"`
	Interval Duration `json:"interval,omitempty"`
	// StreamSize is the transfer size for stream and path-repair.
	StreamSize int `json:"stream_size,omitempty"`
	// Failures is how many successive link failures path-repair injects.
	Failures int `json:"failures,omitempty"`
	// WithSTP adds the STP baseline run to path-repair (default true).
	WithSTP *bool `json:"with_stp,omitempty"`
	// FastSTP gives the baseline the fastest legal STP timers.
	FastSTP bool `json:"fast_stp,omitempty"`
	// Frames is the pump volume of the forward benchmark.
	Frames int `json:"frames,omitempty"`
	// Bridges sizes the scale and allpath experiments' fabrics.
	Bridges int `json:"bridges,omitempty"`

	// Pattern selects the traffic matrix of the matrix workload and the
	// allpath experiment: hotspot, permutation or pairs.
	Pattern string `json:"pattern,omitempty"`
	// Flows is the matrix flow count (0 = one per host).
	Flows int `json:"flows,omitempty"`
	// Hotspots is the hotspot pattern's hot-destination count.
	Hotspots int `json:"hotspots,omitempty"`
	// Skew is the pairs pattern's Zipf exponent.
	Skew float64 `json:"skew,omitempty"`
	// FlowBytes is the per-flow transfer size.
	FlowBytes int `json:"flow_bytes,omitempty"`
	// Arrival is the mean spacing of the seeded flow arrival schedule.
	Arrival Duration `json:"arrival,omitempty"`
	// Conversations is the tables experiment's distinct host-conversation
	// count (synthetic edge-host multiplexing; 0 = 100k).
	Conversations int `json:"conversations,omitempty"`
}

// ScenarioSpec parameterizes the adversarial sweep. The protocol under
// test comes from Spec.Protocol — arppath (optionally with the proxy
// enabled in its config extension), flowpath or tcppath; any other
// config tuning is rejected, the sweep builds its fabrics with the
// defaults — and the probe counts from Spec.Verify. Spec.Link and
// Spec.WarmUp do not apply: each scenario draws its own links and
// warm-up from its seed.
type ScenarioSpec struct {
	// Topologies and Faults list family names, or ["all"] (the default;
	// WithDefaults expands it).
	Topologies []string `json:"topologies,omitempty"`
	Faults     []string `json:"faults,omitempty"`
	// Seeds is how many consecutive seeds run per (topology, faults)
	// pairing, starting at Spec.Seed.
	Seeds int `json:"seeds,omitempty"`
	// Big selects the larger topology tier.
	Big bool `json:"big,omitempty"`
	// Shrink minimizes failing fault schedules (default true).
	Shrink *bool `json:"shrink,omitempty"`
	// FaultPhase/Quiesce override the scenario phase timing.
	FaultPhase Duration `json:"fault_phase,omitempty"`
	Quiesce    Duration `json:"quiesce,omitempty"`
}

// VerifySpec holds the verification knobs.
type VerifySpec struct {
	// Fingerprint folds every tap event of every fabric the run builds
	// into a digest and emits it after the workload: same Spec ⇒ same
	// fingerprint, at any shard count and on any machine.
	Fingerprint bool `json:"fingerprint,omitempty"`
	// Pairs/Pings size the sweep's post-quiescence delivery probes.
	Pairs int `json:"pairs,omitempty"`
	Pings int `json:"pings,omitempty"`
}

// DecodeSpec parses a Spec strictly: unknown fields anywhere in the
// document (including per-protocol config extensions, which are checked
// by WithDefaults) are errors.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after JSON document")
	}
	if s.Version > SpecVersion {
		return Spec{}, fmt.Errorf("spec: version %d is newer than this build's %d", s.Version, SpecVersion)
	}
	return s, nil
}

// LoadSpec reads and strictly decodes a spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	s, err := DecodeSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the Spec as canonical indented JSON with a trailing
// newline. decode → WithDefaults → Encode → decode → WithDefaults is a
// fixed point (the codec round-trip test pins it).
func (s Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WithDefaults returns the Spec with every unset field filled explicitly,
// validating as it goes: the protocol must be registered (its config
// extension is decoded strictly, defaulted field-wise and re-encoded
// canonically), the scenario families must exist, and the version must be
// current. The result fully spells out the run a bare Spec implies.
func (s Spec) WithDefaults() (Spec, error) {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if s.Version != SpecVersion {
		return Spec{}, fmt.Errorf("spec: unsupported version %d", s.Version)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards < 1 {
		s.Shards = 1
	}

	// Protocol: resolve, decode the extension, default field-wise,
	// re-encode canonically.
	if s.Protocol.Name == "" {
		s.Protocol.Name = string(topo.ARPPath)
	}
	def, ok := topo.LookupProtocol(topo.Protocol(s.Protocol.Name))
	if !ok {
		return Spec{}, fmt.Errorf("spec: unknown protocol %q (registered: %v)", s.Protocol.Name, Protocols())
	}
	cfg, err := decodeProtocolConfig(def, s.Protocol.Config)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: protocol %q config: %w", s.Protocol.Name, err)
	}
	def.ApplyDefaults(cfg)
	if def.EncodeConfig != nil {
		raw, err := def.EncodeConfig(cfg)
		if err != nil {
			return Spec{}, fmt.Errorf("spec: protocol %q config: %w", s.Protocol.Name, err)
		}
		s.Protocol.Config = raw
	}

	// Link, warm-up.
	d := netsim.DefaultLinkConfig()
	if s.Link.RateBps == 0 {
		s.Link.RateBps = d.Rate
	}
	if s.Link.Delay == 0 {
		s.Link.Delay = Duration(d.Delay)
	}
	if s.Link.QueueBytes == 0 {
		s.Link.QueueBytes = d.Queue
	}
	if s.WarmUp == 0 {
		s.WarmUp = Duration(def.WarmUp(cfg))
	}

	// Topology defaults, only where a family is in play.
	if s.Topology.Family == "" && topologyKinds[s.Workload.Kind] {
		s.Topology.Family = "figure2"
	}
	if s.Topology.Family != "" {
		s.Topology = s.Topology.withDefaults()
	}

	s.Workload = s.Workload.withDefaults()

	if s.Workload.Kind == "sweep" {
		sc := ScenarioSpec{}
		if s.Scenario != nil {
			sc = *s.Scenario
		}
		sc, err := sc.withDefaults()
		if err != nil {
			return Spec{}, err
		}
		s.Scenario = &sc
		if s.Verify.Pairs == 0 {
			s.Verify.Pairs = 4
		}
		if s.Verify.Pings == 0 {
			s.Verify.Pings = 3
		}
	}
	return s, nil
}

func decodeProtocolConfig(def topo.Definition, raw json.RawMessage) (any, error) {
	if def.DecodeConfig != nil {
		return def.DecodeConfig(raw)
	}
	if len(raw) > 0 && !bytes.Equal(bytes.TrimSpace(raw), []byte("{}")) {
		return nil, fmt.Errorf("protocol registers no config codec but the spec carries an extension")
	}
	return def.NewConfig(), nil
}

// SetOption merges one key into the protocol's JSON config extension,
// preserving whatever else the extension already carries. Cmds use it to
// fold a flag (-proxy) into a possibly spec-loaded config without
// clobbering the rest.
func (p *ProtocolSpec) SetOption(key string, value any) error {
	m := map[string]any{}
	if len(p.Config) > 0 {
		if err := json.Unmarshal(p.Config, &m); err != nil {
			return fmt.Errorf("protocol config: %w", err)
		}
	}
	m[key] = value
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p.Config = raw
	return nil
}

// topologyKinds are the workload kinds that build the Spec's topology.
var topologyKinds = map[string]bool{"ping": true, "stream": true, "allpairs": true, "matrix": true}

func (t TopologySpec) withDefaults() TopologySpec {
	switch t.Family {
	case "figure2":
		if t.Profile == "" {
			t.Profile = string(topo.ProfileSlowDiagonal)
		}
	case "line", "ring", "fattree", "random", "erdos-renyi", "random-regular":
		if t.N == 0 {
			t.N = 4
		}
	case "grid":
		if t.N == 0 && t.Rows == 0 {
			t.N = 4
		}
	case "ring-of-rings":
		if t.Rings == 0 {
			t.Rings = 3
		}
		if t.RingSize == 0 {
			t.RingSize = 4
		}
	}
	switch t.Family {
	case "random-regular":
		if t.Degree == 0 {
			t.Degree = 3
		}
	case "erdos-renyi":
		if t.P == 0 {
			t.P = 0.2
		}
	}
	return t
}

func (w WorkloadSpec) withDefaults() WorkloadSpec {
	switch w.Kind {
	case "ping", "figure2-demo":
		if w.Pings == 0 {
			w.Pings = 20
		}
		if w.Interval == 0 {
			w.Interval = Duration(100 * time.Millisecond)
		}
	case "stream":
		if w.StreamSize == 0 {
			w.StreamSize = defaultStreamSize()
		}
	case "path-repair":
		if w.StreamSize == 0 {
			w.StreamSize = 32 << 20
		}
		if w.Failures == 0 {
			w.Failures = 2
		}
		if w.WithSTP == nil {
			t := true
			w.WithSTP = &t
		}
	case "forward":
		if w.Frames == 0 {
			w.Frames = 50_000
		}
	case "scale":
		if w.Bridges == 0 {
			w.Bridges = 256
		}
	case "matrix":
		if w.Pattern == "" {
			w.Pattern = "hotspot"
		}
		if w.Hotspots == 0 {
			w.Hotspots = 2
		}
		if w.Skew == 0 {
			w.Skew = 1.5
		}
		if w.FlowBytes == 0 {
			w.FlowBytes = 256 << 10
		}
		if w.Arrival == 0 {
			w.Arrival = Duration(time.Millisecond)
		}
	case "allpath":
		// The comparative experiment sweeps every pattern itself; only
		// the fabric and flow-count knobs apply.
		if w.Bridges == 0 {
			w.Bridges = 24
		}
		if w.Flows == 0 {
			w.Flows = 24
		}
	case "tables":
		// The eviction-pressure experiment sweeps capacities itself; the
		// knob is how many distinct conversations churn the tables.
		if w.Conversations == 0 {
			w.Conversations = 100_000
		}
	}
	return w
}

func (sc ScenarioSpec) withDefaults() (ScenarioSpec, error) {
	all := func(names []string) bool {
		return len(names) == 0 || (len(names) == 1 && names[0] == "all")
	}
	if all(sc.Topologies) {
		sc.Topologies = nil
		for _, f := range scenario.TopologyFamilies() {
			sc.Topologies = append(sc.Topologies, string(f))
		}
	} else {
		known := make(map[string]bool)
		for _, f := range scenario.TopologyFamilies() {
			known[string(f)] = true
		}
		for _, f := range sc.Topologies {
			if !known[f] {
				return sc, fmt.Errorf("spec: unknown topology family %q", f)
			}
		}
	}
	if all(sc.Faults) {
		sc.Faults = nil
		for _, f := range scenario.FaultFamilies() {
			sc.Faults = append(sc.Faults, string(f))
		}
	} else {
		known := make(map[string]bool)
		for _, f := range scenario.FaultFamilies() {
			known[string(f)] = true
		}
		for _, f := range sc.Faults {
			if !known[f] {
				return sc, fmt.Errorf("spec: unknown fault family %q", f)
			}
		}
	}
	if sc.Seeds == 0 {
		sc.Seeds = 16
	}
	if sc.Shrink == nil {
		t := true
		sc.Shrink = &t
	}
	if sc.FaultPhase == 0 {
		sc.FaultPhase = Duration(400 * time.Millisecond)
	}
	if sc.Quiesce == 0 {
		sc.Quiesce = Duration(700 * time.Millisecond)
	}
	return sc, nil
}

// Options compiles the Spec's build half into the imperative form the
// topology builder consumes. The Spec must already be defaulted.
func (s Spec) Options() (topo.Options, error) {
	def, ok := topo.LookupProtocol(topo.Protocol(s.Protocol.Name))
	if !ok {
		return topo.Options{}, fmt.Errorf("spec: unknown protocol %q (registered: %v)", s.Protocol.Name, Protocols())
	}
	cfg, err := decodeProtocolConfig(def, s.Protocol.Config)
	if err != nil {
		return topo.Options{}, fmt.Errorf("spec: protocol %q config: %w", s.Protocol.Name, err)
	}
	def.ApplyDefaults(cfg)
	return topo.Options{
		Protocol:       topo.Protocol(s.Protocol.Name),
		ProtocolConfig: cfg,
		Seed:           s.Seed,
		Link: netsim.LinkConfig{
			Rate:  s.Link.RateBps,
			Delay: s.Link.Delay.D(),
			Queue: s.Link.QueueBytes,
		},
		WarmUp:     s.WarmUp.D(),
		Shards:     s.Shards,
		SpareJacks: s.Topology.SpareJacks,
	}, nil
}
