package fabric

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/learning"
)

// runToBuffer runs a spec capturing Out.
func runToBuffer(t *testing.T, r Runner) (*Result, string) {
	t.Helper()
	var out bytes.Buffer
	r.Out = &out
	r.Err = &out
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return res, out.String()
}

// TestRunnerFingerprintShardInvariant is the SDK's determinism gate: the
// same Spec produces the same trace fingerprint on the single engine and
// on the sharded parallel engine, across distinct workload shapes.
func TestRunnerFingerprintShardInvariant(t *testing.T) {
	spec := Spec{
		Seed:     11,
		Topology: TopologySpec{Family: "ring", N: 6},
		Workload: WorkloadSpec{Kind: "ping", Pings: 4, Interval: Duration(5 * time.Millisecond)},
		Verify:   VerifySpec{Fingerprint: true},
	}
	res1, _ := runToBuffer(t, Runner{Spec: spec})
	if res1.Fingerprint == 0 || res1.Fabrics == 0 {
		t.Fatalf("no fingerprint collected: %+v", res1)
	}
	again, _ := runToBuffer(t, Runner{Spec: spec})
	if again.Fingerprint != res1.Fingerprint || again.TraceEvents != res1.TraceEvents {
		t.Fatalf("rerun diverged: %#x/%d vs %#x/%d",
			again.Fingerprint, again.TraceEvents, res1.Fingerprint, res1.TraceEvents)
	}
	spec.Shards = 3
	sharded, _ := runToBuffer(t, Runner{Spec: spec})
	if sharded.Fingerprint != res1.Fingerprint || sharded.TraceEvents != res1.TraceEvents {
		t.Fatalf("shards=3 diverged: %#x/%d vs %#x/%d",
			sharded.Fingerprint, sharded.TraceEvents, res1.Fingerprint, res1.TraceEvents)
	}
}

// TestRunnerSweep drives the scenario harness through the Spec path: a
// small sweep with the proxy extension enabled must pass every invariant
// and fold a deterministic fingerprint.
func TestRunnerSweep(t *testing.T) {
	spec := Spec{
		Workload: WorkloadSpec{Kind: "sweep"},
		Protocol: ProtocolSpec{Name: "arppath", Config: json.RawMessage(`{"proxy":true}`)},
		Scenario: &ScenarioSpec{
			Topologies: []string{"erdos-renyi"},
			Faults:     []string{"link-flaps", "host-mobility"},
			Seeds:      2,
		},
		Verify: VerifySpec{Fingerprint: true},
	}
	res, out := runToBuffer(t, Runner{Spec: spec, Jobs: 2, Verbose: true})
	if res.Failures != 0 {
		t.Fatalf("sweep failed:\n%s", out)
	}
	if !strings.Contains(out, "4 scenarios, 0 failed") {
		t.Fatalf("unexpected sweep summary:\n%s", out)
	}
	if res.Fingerprint == 0 || res.Fabrics != 4 {
		t.Fatalf("sweep fingerprint not folded: %+v", res)
	}
	again, _ := runToBuffer(t, Runner{Spec: spec, Jobs: 1})
	if again.Fingerprint != res.Fingerprint {
		t.Fatalf("sweep fingerprint depends on jobs: %#x vs %#x", again.Fingerprint, res.Fingerprint)
	}
}

// TestOutOfTreeProtocolPluggable is the registry's reason to exist: a
// protocol this package has never heard of registers at runtime and is
// immediately buildable from a Spec by name, config extension included.
func TestOutOfTreeProtocolPluggable(t *testing.T) {
	type variantConfig struct {
		Aging Duration `json:"aging,omitempty"`
	}
	RegisterProtocol("test-variant", Constructor{
		NewConfig: func() any { return new(variantConfig) },
		Defaults: func(cfg any) {
			c := cfg.(*variantConfig)
			if c.Aging == 0 {
				c.Aging = Duration(time.Minute)
			}
		},
		WarmUp: func(any) time.Duration { return 10 * time.Millisecond },
		Build: func(net *Network, name string, numID int, cfg any) Bridge {
			c := cfg.(*variantConfig)
			return learning.NewWithConfig(net, name, numID, learning.Config{Aging: c.Aging.D()})
		},
		DecodeConfig: func(raw []byte) (any, error) {
			c := new(variantConfig)
			if len(raw) > 0 {
				if err := json.Unmarshal(raw, c); err != nil {
					return nil, err
				}
			}
			return c, nil
		},
		EncodeConfig: func(cfg any) ([]byte, error) { return json.Marshal(cfg) },
	})

	found := false
	for _, p := range Protocols() {
		if p == "test-variant" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered protocol not listed")
	}

	spec := Spec{
		Topology: TopologySpec{Family: "line", N: 2},
		Protocol: ProtocolSpec{Name: "test-variant", Config: json.RawMessage(`{"aging":"30s"}`)},
		Workload: WorkloadSpec{Kind: "ping", Pings: 2, Interval: Duration(time.Millisecond)},
	}
	_, out := runToBuffer(t, Runner{Spec: spec})
	if !strings.Contains(out, "protocol=test-variant") || !strings.Contains(out, "lost=0") {
		t.Fatalf("variant did not carry traffic:\n%s", out)
	}
}
