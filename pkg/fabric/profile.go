package fabric

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// ProfileOptions asks the Runner to record pprof/runtime-trace artifacts
// around the workload. Like every other Runner field it tunes observation
// only: profiles change nothing in any simulation result, so a profiled
// run's tables and fingerprints stay byte-identical to an unprofiled one.
// Empty paths disable the corresponding collector.
type ProfileOptions struct {
	// CPUPath receives a pprof CPU profile covering the workload.
	CPUPath string
	// MemPath receives a pprof heap profile written after the workload
	// (with a GC first, so it reflects live retention, not garbage).
	MemPath string
	// TracePath receives a runtime execution trace covering the workload
	// (goroutine scheduling of the shard workers, GC, syscalls).
	TracePath string
	// MutexPath receives a pprof mutex-contention profile covering the
	// workload: where goroutines stalled waiting for locks held by others
	// — the coordinator's window barrier shows up here if it ever
	// contends.
	MutexPath string
	// BlockPath receives a pprof blocking profile covering the workload:
	// time spent parked in channel/condvar waits, which is how worker
	// wake-up stalls and coordinator waits are attributed to call sites.
	BlockPath string
}

// enabled reports whether any collector is requested.
func (p ProfileOptions) enabled() bool {
	return p.CPUPath != "" || p.MemPath != "" || p.TracePath != "" ||
		p.MutexPath != "" || p.BlockPath != ""
}

// start begins the requested collectors and returns the matching stop
// function. The stop function is idempotent-safe to call exactly once.
func (p ProfileOptions) start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	fail := func(err error) (func() error, error) {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			rtrace.Stop()
			traceFile.Close()
		}
		if p.MutexPath != "" {
			runtime.SetMutexProfileFraction(0)
		}
		if p.BlockPath != "" {
			runtime.SetBlockProfileRate(0)
		}
		return nil, err
	}
	// The mutex/block collectors are runtime-global sampling rates rather
	// than stream writers: turn them on before the workload, snapshot the
	// accumulated profiles into files at stop, then turn them back off.
	if p.MutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if p.BlockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.CPUPath != "" {
		cpuFile, err = os.Create(p.CPUPath)
		if err != nil {
			return fail(fmt.Errorf("fabric: cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return fail(fmt.Errorf("fabric: cpu profile: %w", err))
		}
	}
	if p.TracePath != "" {
		traceFile, err = os.Create(p.TracePath)
		if err != nil {
			return fail(fmt.Errorf("fabric: exec trace: %w", err))
		}
		if err := rtrace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			return fail(fmt.Errorf("fabric: exec trace: %w", err))
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if traceFile != nil {
			rtrace.Stop()
			if err := traceFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.MemPath != "" {
			f, err := os.Create(p.MemPath)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		if p.MutexPath != "" {
			if err := writeLookupProfile("mutex", p.MutexPath); err != nil && first == nil {
				first = err
			}
			runtime.SetMutexProfileFraction(0)
		}
		if p.BlockPath != "" {
			if err := writeLookupProfile("block", p.BlockPath); err != nil && first == nil {
				first = err
			}
			runtime.SetBlockProfileRate(0)
		}
		return first
	}, nil
}

// writeLookupProfile snapshots one of the runtime's named accumulated
// profiles (mutex, block) into path in pprof proto form.
func writeLookupProfile(name, path string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("fabric: unknown profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fabric: %s profile: %w", name, err)
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("fabric: %s profile: %w", name, err)
	}
	return f.Close()
}
