package fabric

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// ProfileOptions asks the Runner to record pprof/runtime-trace artifacts
// around the workload. Like every other Runner field it tunes observation
// only: profiles change nothing in any simulation result, so a profiled
// run's tables and fingerprints stay byte-identical to an unprofiled one.
// Empty paths disable the corresponding collector.
type ProfileOptions struct {
	// CPUPath receives a pprof CPU profile covering the workload.
	CPUPath string
	// MemPath receives a pprof heap profile written after the workload
	// (with a GC first, so it reflects live retention, not garbage).
	MemPath string
	// TracePath receives a runtime execution trace covering the workload
	// (goroutine scheduling of the shard workers, GC, syscalls).
	TracePath string
}

// enabled reports whether any collector is requested.
func (p ProfileOptions) enabled() bool {
	return p.CPUPath != "" || p.MemPath != "" || p.TracePath != ""
}

// start begins the requested collectors and returns the matching stop
// function. The stop function is idempotent-safe to call exactly once.
func (p ProfileOptions) start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	fail := func(err error) (func() error, error) {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			rtrace.Stop()
			traceFile.Close()
		}
		return nil, err
	}
	if p.CPUPath != "" {
		cpuFile, err = os.Create(p.CPUPath)
		if err != nil {
			return fail(fmt.Errorf("fabric: cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return fail(fmt.Errorf("fabric: cpu profile: %w", err))
		}
	}
	if p.TracePath != "" {
		traceFile, err = os.Create(p.TracePath)
		if err != nil {
			return fail(fmt.Errorf("fabric: exec trace: %w", err))
		}
		if err := rtrace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			return fail(fmt.Errorf("fabric: exec trace: %w", err))
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if traceFile != nil {
			rtrace.Stop()
			if err := traceFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.MemPath != "" {
			f, err := os.Create(p.MemPath)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}, nil
}
