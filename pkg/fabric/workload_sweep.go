package fabric

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/flowpath"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// sweepProtocols are the protocols whose invariants the scenario engine
// can verify: ARP-Path and the All-Path variants.
var sweepProtocols = map[topo.Protocol]bool{
	topo.ARPPath:           true,
	flowpath.ProtoFlowPath: true,
	flowpath.ProtoTCPPath:  true,
}

// runSweep is the scenario harness: seeded random topologies × seeded
// fault schedules × protocol invariant checks, with shrink-on-failure.
// Independent scenarios run concurrently on Jobs workers; each scenario's
// seed, trace and fingerprint are identical at any Jobs value.
func (r *Runner) runSweep(spec Spec, out io.Writer, jobs int, res *Result) error {
	proto := topo.Protocol(spec.Protocol.Name)
	if !sweepProtocols[proto] {
		return fmt.Errorf("fabric: the sweep verifies All-Path invariants; protocol %q is not sweepable", spec.Protocol.Name)
	}
	// The one protocol knob the sweep honours is ARP-Path's proxy: a
	// proxy-enabled Spec arms proxy mode (and the proxy-consistency
	// invariant) fleet-wide. Any other tuning in the extension is rejected
	// rather than silently dropped — each scenario builds its fabric with
	// the defaults.
	proxy := false
	if def, ok := topo.LookupProtocol(proto); ok {
		cfg, err := decodeProtocolConfig(def, spec.Protocol.Config)
		if err != nil {
			return err
		}
		def.ApplyDefaults(cfg)
		switch c := cfg.(type) {
		case *core.Config:
			proxy = c.Proxy
			ref := core.DefaultConfig()
			ref.Proxy = c.Proxy
			if *c != ref {
				return fmt.Errorf("fabric: the sweep builds its fabrics with the default ARP-Path config; only the proxy knob is honoured (got %+v)", *c)
			}
		case *flowpath.Config:
			if *c != flowpath.DefaultConfig() {
				return fmt.Errorf("fabric: the sweep builds its fabrics with the default Flow-Path config (got %+v)", *c)
			}
		case *flowpath.TCPConfig:
			if *c != flowpath.DefaultTCPConfig() {
				return fmt.Errorf("fabric: the sweep builds its fabrics with the default TCP-Path config (got %+v)", *c)
			}
		}
	}

	sc := spec.Scenario
	var cfgs []scenario.Config
	for _, tf := range sc.Topologies {
		for _, ff := range sc.Faults {
			for s := 0; s < sc.Seeds; s++ {
				cfgs = append(cfgs, scenario.Config{
					Seed:        spec.Seed + int64(s),
					Topology:    scenario.TopologyFamily(tf),
					Faults:      scenario.FaultFamily(ff),
					Protocol:    proto,
					Big:         sc.Big,
					Proxy:       proxy,
					Shards:      spec.Shards,
					FaultPhase:  sc.FaultPhase.D(),
					Quiesce:     sc.Quiesce.D(),
					VerifyPairs: spec.Verify.Pairs,
					VerifyPings: spec.Verify.Pings,
				})
			}
		}
	}

	// Worker pool: scenarios are independent simulations, so the sweep
	// parallelizes trivially; results are reported in sweep order.
	results := make([]*scenario.Result, len(cfgs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = scenario.Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()

	failed := 0
	for i, sr := range results {
		if !sr.Failed() {
			if r.Verbose {
				fmt.Fprintf(out, "PASS %-40s bridges=%d links=%d events=%d probes=%d/%d warm=%d/%d bg=%d/%d fp=%#x\n",
					cfgs[i].Name(), sr.Bridges, sr.Links, sr.Events,
					sr.ProbesAnswered, sr.ProbesSent,
					sr.WarmProbesAnswered, sr.WarmProbesSent,
					sr.BackgroundDelivered, sr.BackgroundOffered, sr.Fingerprint)
			}
			continue
		}
		failed++
		reportFailure(out, sr)
		if *sc.Shrink {
			doShrink(out, cfgs[i], sr)
		}
	}
	fmt.Fprintf(out, "\n%d scenarios, %d failed (j=%d, big=%v, shards=%d)\n", len(cfgs), failed, jobs, sc.Big, spec.Shards)
	res.Failures = failed

	if spec.Verify.Fingerprint {
		for _, sr := range results {
			res.Fingerprint = foldFingerprint(res.Fingerprint, sr.Fingerprint)
			res.TraceEvents += sr.Events
		}
		res.Fabrics = len(results)
	}
	return nil
}

func reportFailure(out io.Writer, r *scenario.Result) {
	fmt.Fprintf(out, "FAIL %s (bridges=%d links=%d events=%d)\n", r.Config.Name(), r.Bridges, r.Links, r.Events)
	for _, v := range r.Violations {
		fmt.Fprintf(out, "  violation: %v\n", v)
	}
	if r.ViolationsDropped > 0 {
		fmt.Fprintf(out, "  ... and %d further violations\n", r.ViolationsDropped)
	}
	for _, op := range r.OpsApplied {
		fmt.Fprintf(out, "  schedule: %s\n", op)
	}
}

func doShrink(out io.Writer, cfg scenario.Config, r *scenario.Result) {
	min, res, ok := scenario.Shrink(cfg, r.Ops)
	if !ok {
		fmt.Fprintf(out, "  shrink: failure does not reproduce from the fault schedule alone\n")
		return
	}
	fmt.Fprintf(out, "  shrink: %d of %d ops suffice:\n", len(min), len(r.Ops))
	for _, op := range res.OpsApplied {
		fmt.Fprintf(out, "    %s\n", op)
	}
	// The reproduce line must name the exact scenario: protocol, big and
	// proxy runs of a seed are different scenarios (different builds).
	extra := ""
	if cfg.Protocol != "" && cfg.Protocol != topo.ARPPath {
		extra += " -protocol " + string(cfg.Protocol)
	}
	if cfg.Big {
		extra += " -big"
	}
	if cfg.Proxy {
		extra += " -proxy"
	}
	fmt.Fprintf(out, "  reproduce: go run ./cmd/scenario -topo %s -faults %s -seed0 %d -seeds 1%s\n",
		cfg.Topology, cfg.Faults, cfg.Seed, extra)
}
