package fabric

import (
	"fmt"
	"io"
	"time"

	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runSim drives the simulator workloads (ping, stream, allpairs) on the
// Spec's topology — the arppath-sim harness, spec-rooted.
func (r *Runner) runSim(spec Spec, out io.Writer, res *Result) error {
	opts, err := spec.Options()
	if err != nil {
		return err
	}
	built, err := BuildTopology(opts, spec.Topology)
	if err != nil {
		return err
	}
	if r.TraceTo != nil {
		trace.Attach(built.Network, trace.WithWriter(r.TraceTo), trace.WithFilter(trace.DeliveriesOnly))
	}

	first, last, err := pickEndpoints(built, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology=%s bridges=%d hosts=%d links=%d protocol=%s seed=%d\n\n",
		spec.Topology.Family, len(built.Bridges), len(built.Hosts), len(built.Links),
		spec.Protocol.Name, spec.Seed)

	switch spec.Workload.Kind {
	case "ping":
		return runPing(built, first, last, spec.Workload, out)
	case "stream":
		return runStream(built, first, last, spec.Workload, out)
	case "allpairs":
		return runAllPairs(built, out, r, res)
	}
	return fmt.Errorf("fabric: unknown simulator workload %q", spec.Workload.Kind)
}

// pickEndpoints returns a deterministic pair of distinct hosts.
func pickEndpoints(b *Built, out io.Writer) (*host.Host, *host.Host, error) {
	for _, pair := range [][2]string{{"A", "B"}, {"S", "D"}, {"H1", "H2"}} {
		if h1, ok := b.Hosts[pair[0]]; ok {
			if h2, ok := b.Hosts[pair[1]]; ok {
				return h1, h2, nil
			}
		}
	}
	// Fall back to the two highest-numbered H hosts.
	var h1, h2 *host.Host
	for i := len(b.Hosts); i >= 1; i-- {
		if h, ok := b.Hosts[fmt.Sprintf("H%d", i)]; ok {
			if h2 == nil {
				h2 = h
			} else {
				h1 = h
				break
			}
		}
	}
	if h1 == nil || h2 == nil {
		fmt.Fprintln(out, "topology has no usable host pair")
		return nil, nil, ErrIncomplete
	}
	return h1, h2, nil
}

func runPing(built *Built, a, b *host.Host, w WorkloadSpec, out io.Writer) error {
	var rep *app.PingReport
	built.Engine.At(built.Now(), func() {
		app.RunPingSeries(a, b.IP(), w.Pings, w.Interval.D(), func(r *app.PingReport) { rep = r })
	})
	built.RunFor(time.Minute)
	if rep == nil {
		fmt.Fprintln(out, "ping series did not finish")
		return ErrIncomplete
	}
	fmt.Fprintf(out, "%s -> %s: sent=%d lost=%d\n", a.Name(), b.Name(), rep.Sent, rep.Lost)
	fmt.Fprintf(out, "rtt: %s\n\n", rep.RTTs.String())
	fmt.Fprintln(out, rep.Series.ASCII(72, 8))
	return nil
}

func runStream(built *Built, a, b *host.Host, w WorkloadSpec, out io.Writer) error {
	cfg := app.DefaultStreamConfig()
	cfg.Size = w.StreamSize
	var rep *app.StreamReport
	built.Engine.At(built.Now(), func() {
		app.StartStream(a, b, cfg, func(r *app.StreamReport) { rep = r })
	})
	built.RunFor(5 * time.Minute)
	if rep == nil {
		fmt.Fprintln(out, "stream did not finish inside the budget")
		return ErrIncomplete
	}
	fmt.Fprintf(out, "%s -> %s: %d bytes, complete=%v, stalls=%d, total stall=%v, time=%v\n\n",
		a.Name(), b.Name(), rep.Received, rep.Complete, len(rep.Stalls),
		rep.TotalStall.Round(time.Millisecond),
		(rep.Finished - rep.Connected).Round(time.Millisecond))
	fmt.Fprintln(out, rep.Goodput.ASCII(72, 8))
	return nil
}

func runAllPairs(built *Built, out io.Writer, r *Runner, res *Result) error {
	table := metrics.NewTable("all-pairs steady-state RTT", "pair", "first", "steady", "lost")
	names := make([]string, 0, len(built.Hosts))
	for i := 1; i <= len(built.Hosts); i++ {
		name := fmt.Sprintf("H%d", i)
		if _, ok := built.Hosts[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		fmt.Fprintln(out, "allpairs needs H1..Hn hosts (use ring/grid/fattree/random)")
		return ErrIncomplete
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := built.Host(names[i]), built.Host(names[j])
			var results []host.PingResult
			built.Engine.At(built.Now(), func() {
				a.PingSeries(b.IP(), 5, 56, 10*time.Millisecond, 2*time.Second, func(rs []host.PingResult) {
					results = rs
				})
			})
			built.RunFor(10 * time.Second)
			var first, steady time.Duration
			lost := 0
			var d metrics.Distribution
			for k, pr := range results {
				if pr.Err != nil {
					lost++
					continue
				}
				if k == 0 {
					first = pr.RTT
				} else {
					d.Add(pr.RTT)
				}
			}
			steady = d.Mean()
			table.AddRow(names[i]+"-"+names[j], first.Round(time.Microsecond),
				steady.Round(time.Microsecond), lost)
		}
	}
	r.emit(out, res, table)
	return nil
}
