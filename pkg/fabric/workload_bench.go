package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// lockWindows is the T5 sweep: below, near and above the test ring's
// flood traversal time.
func lockWindows() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
		200 * time.Millisecond,
	}
}

// runBench is the fabricbench harness: the extended experiments derived
// from the paper's §2.2 claims (DESIGN.md T1–T6), the forwarding
// benchmark and the sharded-engine scaling experiment.
func (r *Runner) runBench(spec Spec, out, errw io.Writer, res *Result) error {
	seed := spec.Seed
	switch spec.Workload.Kind {
	case "properties":
		r.emit(out, res, experiments.T1Table(experiments.RunT1Properties(seed, 6)))
	case "load":
		ap := experiments.RunT2Load(seed, topo.ARPPath)
		st := experiments.RunT2Load(seed, topo.STP)
		r.emit(out, res, experiments.T2Table([]*experiments.T2Result{ap, st}))
	case "proxy":
		r.emit(out, res, experiments.T3Table(experiments.RunT3Proxy(seed, []int{4, 8, 16, 32})))
	case "repair":
		r.emit(out, res, experiments.T4Table(experiments.RunT4Repair(seed)))
	case "lockwindow":
		r.emit(out, res, experiments.T5Table(experiments.RunT5LockWindow(seed, lockWindows())))
	case "tablesize":
		r.emit(out, res, experiments.T6Table(experiments.RunT6TableSize(seed, []int{8, 16, 32})))
	case "forward":
		r.emit(out, res, experiments.ForwardTable(experiments.RunForwardBench(seed, spec.Workload.Frames)))
	case "scale":
		t, bench, err := runScale(seed, spec.Workload.Bridges, spec.Shards, spec.Procs, errw)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, t)
	case "allpath":
		acfg := experiments.AllPathConfig{
			Seed: seed, Bridges: spec.Workload.Bridges, Degree: 3,
			Flows: spec.Workload.Flows,
		}
		rs := experiments.RunAllPath(acfg)
		bench, err := experiments.AllPathJSON(acfg, rs)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, experiments.AllPathTable(rs))
	case "tables":
		tcfg := experiments.DefaultTablesConfig(seed, spec.Workload.Conversations)
		rs := experiments.RunTables(tcfg)
		bench, err := experiments.TablesJSON(rs)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, experiments.TablesTable(rs))
	case "all":
		r.emit(out, res, experiments.T1Table(experiments.RunT1Properties(seed, 6)))
		ap := experiments.RunT2Load(seed, topo.ARPPath)
		st := experiments.RunT2Load(seed, topo.STP)
		r.emit(out, res, experiments.T2Table([]*experiments.T2Result{ap, st}))
		r.emit(out, res, experiments.T3Table(experiments.RunT3Proxy(seed, []int{4, 8, 16, 32})))
		r.emit(out, res, experiments.T4Table(experiments.RunT4Repair(seed)))
		r.emit(out, res, experiments.T5Table(experiments.RunT5LockWindow(seed, lockWindows())))
		r.emit(out, res, experiments.T6Table(experiments.RunT6TableSize(seed, []int{8, 16, 32})))
	}
	return nil
}

// benchRecord is one scale run's machine-dependent half, serialized for
// the CI bench artifact. Records pair by (bridges, shards, gomaxprocs);
// events/delivered/windows/barriers/exchanged are deterministic, the
// wall-clock family (wall_ns, events_per_sec, frames_per_sec, wake_ns)
// is not.
type benchRecord struct {
	Bridges      int     `json:"bridges"`
	Shards       int     `json:"shards"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	LookaheadNS  int64   `json:"lookahead_ns"`
	Events       uint64  `json:"events"`
	Delivered    int     `json:"delivered"`
	Windows      uint64  `json:"windows"`
	Barriers     uint64  `json:"barriers"`
	Exchanged    uint64  `json:"exchanged"`
	WakeNS       int64   `json:"wake_ns"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// runScale sweeps shard counts 1..maxShards (doubling) on one fabric —
// once per requested GOMAXPROCS value — and renders the deterministic
// table; wall-clock figures go to errw and come back as the JSON bench
// artifact. The deterministic columns must not move across procs passes:
// a mismatch is a coordinator bug and fails the run.
func runScale(seed int64, bridges, maxShards int, procs []int, errw io.Writer) (*metrics.Table, []byte, error) {
	// Shard counts: doubling from 1, always ending exactly at maxShards.
	var counts []int
	for k := 1; k < maxShards; k *= 2 {
		counts = append(counts, k)
	}
	counts = append(counts, maxShards)
	ambient := runtime.GOMAXPROCS(0)
	if len(procs) == 0 {
		procs = []int{ambient}
	}
	defer runtime.GOMAXPROCS(ambient)

	var results []*experiments.ScaleResult
	var records []benchRecord
	byShards := make(map[int]*experiments.ScaleResult)
	for _, p := range procs {
		if p < 1 {
			return nil, nil, fmt.Errorf("fabric: scale procs value %d", p)
		}
		runtime.GOMAXPROCS(p)
		for _, k := range counts {
			cfg := experiments.DefaultScaleConfig(seed, k)
			cfg.Bridges = bridges
			sr := experiments.RunScale(cfg)
			if ref, ok := byShards[k]; !ok {
				byShards[k] = sr
				// The table reports deterministic columns only, so one row
				// per shard count regardless of how many procs passes ran.
				results = append(results, sr)
			} else if ref.Events != sr.Events || ref.Delivered != sr.Delivered ||
				ref.Windows != sr.Windows || ref.Barriers != sr.Barriers || ref.Exchanged != sr.Exchanged {
				return nil, nil, fmt.Errorf(
					"fabric: scale shards=%d diverged at GOMAXPROCS=%d: events=%d delivered=%d windows=%d barriers=%d exchanged=%d, want %d/%d/%d/%d/%d",
					k, p, sr.Events, sr.Delivered, sr.Windows, sr.Barriers, sr.Exchanged,
					ref.Events, ref.Delivered, ref.Windows, ref.Barriers, ref.Exchanged)
			}
			fmt.Fprintf(errw, "%s gomaxprocs=%d\n", experiments.ScaleBenchLine(sr), p)
			records = append(records, benchRecord{
				Bridges: sr.Bridges, Shards: k, GOMAXPROCS: p,
				LookaheadNS: int64(sr.Lookahead), Events: sr.Events, Delivered: sr.Delivered,
				Windows: sr.Windows, Barriers: sr.Barriers, Exchanged: sr.Exchanged, WakeNS: sr.WakeNS,
				WallNS: int64(sr.Wall), EventsPerSec: sr.EventsPerSec, FramesPerSec: sr.FramesPerSec,
			})
		}
	}
	bench, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	return experiments.ScaleTable(results), append(bench, '\n'), nil
}
