package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// lockWindows is the T5 sweep: below, near and above the test ring's
// flood traversal time.
func lockWindows() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
		200 * time.Millisecond,
	}
}

// runBench is the fabricbench harness: the extended experiments derived
// from the paper's §2.2 claims (DESIGN.md T1–T6), the forwarding
// benchmark and the sharded-engine scaling experiment.
func (r *Runner) runBench(spec Spec, out, errw io.Writer, res *Result) error {
	seed := spec.Seed
	switch spec.Workload.Kind {
	case "properties":
		r.emit(out, res, experiments.T1Table(experiments.RunT1Properties(seed, 6)))
	case "load":
		ap := experiments.RunT2Load(seed, topo.ARPPath)
		st := experiments.RunT2Load(seed, topo.STP)
		r.emit(out, res, experiments.T2Table([]*experiments.T2Result{ap, st}))
	case "proxy":
		r.emit(out, res, experiments.T3Table(experiments.RunT3Proxy(seed, []int{4, 8, 16, 32})))
	case "repair":
		r.emit(out, res, experiments.T4Table(experiments.RunT4Repair(seed)))
	case "lockwindow":
		r.emit(out, res, experiments.T5Table(experiments.RunT5LockWindow(seed, lockWindows())))
	case "tablesize":
		r.emit(out, res, experiments.T6Table(experiments.RunT6TableSize(seed, []int{8, 16, 32})))
	case "forward":
		r.emit(out, res, experiments.ForwardTable(experiments.RunForwardBench(seed, spec.Workload.Frames)))
	case "scale":
		t, bench, err := runScale(seed, spec.Workload.Bridges, spec.Shards, errw)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, t)
	case "allpath":
		acfg := experiments.AllPathConfig{
			Seed: seed, Bridges: spec.Workload.Bridges, Degree: 3,
			Flows: spec.Workload.Flows,
		}
		rs := experiments.RunAllPath(acfg)
		bench, err := experiments.AllPathJSON(acfg, rs)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, experiments.AllPathTable(rs))
	case "tables":
		tcfg := experiments.DefaultTablesConfig(seed, spec.Workload.Conversations)
		rs := experiments.RunTables(tcfg)
		bench, err := experiments.TablesJSON(rs)
		if err != nil {
			return err
		}
		res.BenchJSON = bench
		r.emit(out, res, experiments.TablesTable(rs))
	case "all":
		r.emit(out, res, experiments.T1Table(experiments.RunT1Properties(seed, 6)))
		ap := experiments.RunT2Load(seed, topo.ARPPath)
		st := experiments.RunT2Load(seed, topo.STP)
		r.emit(out, res, experiments.T2Table([]*experiments.T2Result{ap, st}))
		r.emit(out, res, experiments.T3Table(experiments.RunT3Proxy(seed, []int{4, 8, 16, 32})))
		r.emit(out, res, experiments.T4Table(experiments.RunT4Repair(seed)))
		r.emit(out, res, experiments.T5Table(experiments.RunT5LockWindow(seed, lockWindows())))
		r.emit(out, res, experiments.T6Table(experiments.RunT6TableSize(seed, []int{8, 16, 32})))
	}
	return nil
}

// benchRecord is one scale run's machine-dependent half, serialized for
// the CI bench artifact.
type benchRecord struct {
	Bridges      int     `json:"bridges"`
	Shards       int     `json:"shards"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	LookaheadNS  int64   `json:"lookahead_ns"`
	Events       uint64  `json:"events"`
	Delivered    int     `json:"delivered"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// runScale sweeps shard counts 1..maxShards (doubling) on one fabric and
// renders the deterministic table; wall-clock figures go to errw and come
// back as the JSON bench artifact.
func runScale(seed int64, bridges, maxShards int, errw io.Writer) (*metrics.Table, []byte, error) {
	// Shard counts: doubling from 1, always ending exactly at maxShards.
	var counts []int
	for k := 1; k < maxShards; k *= 2 {
		counts = append(counts, k)
	}
	counts = append(counts, maxShards)
	var results []*experiments.ScaleResult
	var records []benchRecord
	for _, k := range counts {
		cfg := experiments.DefaultScaleConfig(seed, k)
		cfg.Bridges = bridges
		sr := experiments.RunScale(cfg)
		results = append(results, sr)
		fmt.Fprintln(errw, experiments.ScaleBenchLine(sr))
		records = append(records, benchRecord{
			Bridges: sr.Bridges, Shards: k, GOMAXPROCS: runtime.GOMAXPROCS(0),
			LookaheadNS: int64(sr.Lookahead), Events: sr.Events, Delivered: sr.Delivered,
			WallNS: int64(sr.Wall), EventsPerSec: sr.EventsPerSec, FramesPerSec: sr.FramesPerSec,
		})
	}
	bench, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	return experiments.ScaleTable(results), append(bench, '\n'), nil
}
