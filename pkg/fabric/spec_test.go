package fabric

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topo"
)

// specSamples are the shapes the five cmds compile their flags into, plus
// a fully spelled-out custom one.
func specSamples() []Spec {
	return []Spec{
		{Workload: WorkloadSpec{Kind: "all"}},
		{Workload: WorkloadSpec{Kind: "sweep"}},
		{Workload: WorkloadSpec{Kind: "ping"}, Topology: TopologySpec{Family: "figure2"}},
		{Workload: WorkloadSpec{Kind: "figure2-demo"}},
		{Workload: WorkloadSpec{Kind: "path-repair"}},
		{
			Seed:     7,
			Shards:   4,
			Topology: TopologySpec{Family: "ring", N: 8},
			Protocol: ProtocolSpec{Name: "arppath", Config: json.RawMessage(`{"lock_timeout":"50ms","proxy":true}`)},
			Link:     LinkSpec{RateBps: 100_000_000, Delay: Duration(20 * time.Microsecond), QueueBytes: 64 << 10},
			Workload: WorkloadSpec{Kind: "allpairs"},
			Verify:   VerifySpec{Fingerprint: true},
		},
		{
			Workload: WorkloadSpec{Kind: "sweep"},
			Scenario: &ScenarioSpec{Topologies: []string{"grid"}, Faults: []string{"host-mobility"}, Seeds: 2},
			Protocol: ProtocolSpec{Name: "arppath", Config: json.RawMessage(`{"proxy":true}`)},
		},
	}
}

// TestSpecRoundTripFixedPoint pins the codec contract: decode → defaults
// → encode → decode → defaults → encode reproduces the same bytes.
func TestSpecRoundTripFixedPoint(t *testing.T) {
	for _, s := range specSamples() {
		d1, err := s.WithDefaults()
		if err != nil {
			t.Fatalf("%+v: defaults: %v", s, err)
		}
		e1, err := d1.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		s2, err := DecodeSpec(e1)
		if err != nil {
			t.Fatalf("re-decode: %v\n%s", err, e1)
		}
		d2, err := s2.WithDefaults()
		if err != nil {
			t.Fatalf("re-defaults: %v", err)
		}
		e2, err := d2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("round trip is not a fixed point:\n--- first\n%s\n--- second\n%s", e1, e2)
		}
	}
}

// TestSpecStrictDecoding pins rejection of unknown fields at every level:
// top, nested, and inside a protocol config extension.
func TestSpecStrictDecoding(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"top-level", `{"workloadd": {"kind": "ping"}}`},
		{"nested", `{"workload": {"knd": "ping"}}`},
		{"topology", `{"topology": {"famly": "ring"}}`},
		{"trailing", `{"seed": 1} {"seed": 2}`},
		{"future-version", `{"version": 99}`},
	}
	for _, c := range cases {
		if _, err := DecodeSpec([]byte(c.doc)); err == nil {
			t.Errorf("%s: decoded without error: %s", c.name, c.doc)
		}
	}

	// Unknown fields inside a protocol extension surface in WithDefaults,
	// where the registry's codec runs.
	s, err := DecodeSpec([]byte(`{"protocol": {"name": "arppath", "config": {"proxy": true, "bogus": 1}}}`))
	if err != nil {
		t.Fatalf("outer decode failed: %v", err)
	}
	if _, err := s.WithDefaults(); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown protocol-config field not rejected: %v", err)
	}
}

// TestSpecUnknownNamesRejected covers protocol, topology-family and fault
// family validation.
func TestSpecUnknownNamesRejected(t *testing.T) {
	if _, err := (Spec{Protocol: ProtocolSpec{Name: "flow-path"}}).WithDefaults(); err == nil {
		t.Error("unknown protocol accepted")
	}
	bad := Spec{Workload: WorkloadSpec{Kind: "sweep"}, Scenario: &ScenarioSpec{Topologies: []string{"torus"}}}
	if _, err := bad.WithDefaults(); err == nil {
		t.Error("unknown sweep topology family accepted")
	}
	bad = Spec{Workload: WorkloadSpec{Kind: "sweep"}, Scenario: &ScenarioSpec{Faults: []string{"meteor-strike"}}}
	if _, err := bad.WithDefaults(); err == nil {
		t.Error("unknown fault family accepted")
	}
}

// TestSpecOptionsMatchesDefaultOptions pins that the Spec path compiles
// to exactly the Options the imperative path has always produced — the
// hinge of the cmds' byte-identical guarantee.
func TestSpecOptionsMatchesDefaultOptions(t *testing.T) {
	for _, p := range []string{"arppath", "stp", "learning"} {
		s, err := (Spec{Seed: 3, Protocol: ProtocolSpec{Name: p}}).WithDefaults()
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Options()
		if err != nil {
			t.Fatal(err)
		}
		want := topo.DefaultOptions(topo.Protocol(p), 3)
		if got.Protocol != want.Protocol || got.Seed != want.Seed ||
			got.Link != want.Link || got.WarmUp != want.WarmUp {
			t.Fatalf("%s: spec options %+v, imperative %+v", p, got, want)
		}
		// Config values (behind the pointers) must agree too.
		switch p {
		case "arppath":
			if *got.ProtocolConfig.(*core.Config) != *want.ProtocolConfig.(*core.Config) {
				t.Fatalf("%s: config mismatch", p)
			}
		}
	}

	// The extension plumbs through: a proxy-enabled spec builds
	// proxy-enabled options, with the rest defaulted field-wise.
	s, err := (Spec{Protocol: ProtocolSpec{Name: "arppath", Config: json.RawMessage(`{"proxy":true}`)}}).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.ProtocolConfig.(*core.Config)
	if !cfg.Proxy || cfg.LockTimeout != core.DefaultConfig().LockTimeout {
		t.Fatalf("extension not plumbed/defaulted: %+v", cfg)
	}
}

// FuzzDecodeSpec fuzzes the strict decoder and the defaulting fixed
// point: any input that decodes and defaults must re-encode stably.
func FuzzDecodeSpec(f *testing.F) {
	for _, s := range specSamples() {
		if d, err := s.WithDefaults(); err == nil {
			if e, err := d.Encode(); err == nil {
				f.Add(e)
			}
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":{"kind":"sweep"},"scenario":{"faults":["all"]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return
		}
		d1, err := s.WithDefaults()
		if err != nil {
			return
		}
		e1, err := d1.Encode()
		if err != nil {
			t.Fatalf("defaulted spec failed to encode: %v", err)
		}
		s2, err := DecodeSpec(e1)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-decode: %v\n%s", err, e1)
		}
		d2, err := s2.WithDefaults()
		if err != nil {
			t.Fatalf("canonical encoding failed to re-default: %v\n%s", err, e1)
		}
		e2, err := d2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("not a fixed point:\n--- first\n%s\n--- second\n%s", e1, e2)
		}
	})
}
