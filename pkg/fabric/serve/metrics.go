package serve

// The live observability surface: the info/stats wire replies and the
// /metrics text exposition. Everything here renders from driver context
// with the fabric paused at a boundary, so a scrape is a consistent
// snapshot — no torn counters, no mid-window table states.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/pkg/fabric"
)

func (s *Server) info() *Info {
	hosts := s.index.Hosts()
	mobile := make([]string, 0, 4)
	for _, i := range s.index.MobileHosts() {
		mobile = append(mobile, hosts[i])
	}
	return &Info{
		Protocol: s.spec.Protocol.Name,
		Shards:   s.spec.Shards,
		Quantum:  fabric.Duration(s.quantum),
		Hosts:    hosts,
		Links:    s.index.Links(),
		Bridges:  s.index.Bridges(),
		Mobile:   mobile,
	}
}

func (s *Server) stats() *Stats {
	entries, evictions := s.tableStats()
	burstDelivered := 0
	for _, sk := range s.sinks {
		burstDelivered += sk.Count()
	}
	active := 0
	for _, fl := range s.flows {
		if !fl.done {
			active++
		}
	}
	cs := s.built.CoordStats()
	return &Stats{
		At:             fabric.Duration(s.built.Now()),
		WallSeconds:    time.Since(s.wallStart).Seconds(),
		Events:         s.fp.Events(),
		Delivered:      s.delivered,
		DeliveredBytes: s.deliveredBytes,
		LiveFrames:     s.built.LiveFrames(),
		OpsApplied:     s.seq,
		FlowsActive:    active,
		BurstOffered:   s.burstOffered,
		BurstDelivered: burstDelivered,
		TableEntries:   entries,
		TableEvictions: evictions,
		Windows:        cs.Windows,
		Barriers:       cs.Barriers,
		Exchanged:      cs.Exchanged,
		Classes:        s.classStats(),
	}
}

// renderMetrics emits the text exposition format: untyped gauges and
// counters, one metric per line, labels sorted. Latency classes export
// nearest-rank quantile gauges plus a cumulative le-bucket series
// straight from the log-linear histogram.
func (s *Server) renderMetrics() string {
	st := s.stats()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# fabricserve text exposition; virtual time in seconds\n")
	w("fabricserve_virtual_seconds %s\n", fsec(st.At.D()))
	w("fabricserve_wall_seconds %.3f\n", st.WallSeconds)
	w("fabricserve_shards %d\n", s.spec.Shards)
	w("fabricserve_events_total %d\n", st.Events)
	w("fabricserve_frames_delivered_total %d\n", st.Delivered)
	w("fabricserve_bytes_delivered_total %d\n", st.DeliveredBytes)
	w("fabricserve_frames_live %d\n", st.LiveFrames)
	w("fabricserve_flows_active %d\n", st.FlowsActive)
	w("fabricserve_burst_offered_total %d\n", st.BurstOffered)
	w("fabricserve_burst_delivered_total %d\n", st.BurstDelivered)
	w("fabricserve_table_entries %d\n", st.TableEntries)
	w("fabricserve_table_evictions_total %d\n", st.TableEvictions)
	w("fabricserve_coord_windows_total %d\n", st.Windows)
	w("fabricserve_coord_barriers_total %d\n", st.Barriers)
	w("fabricserve_coord_exchanged_total %d\n", st.Exchanged)

	ops := make([]string, 0, len(s.opCounts))
	for op := range s.opCounts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		w("fabricserve_ops_total{op=%q} %d\n", op, s.opCounts[op])
	}

	for _, name := range sortedClassNames(st.Classes) {
		cs := st.Classes[name]
		w("fabricserve_class_probes_total{class=%q} %d\n", name, cs.Count)
		w("fabricserve_class_lost_total{class=%q} %d\n", name, cs.Lost)
		if cs.Count == 0 {
			continue
		}
		for _, q := range []struct {
			p string
			v fabric.Duration
		}{{"0.5", cs.P50}, {"0.9", cs.P90}, {"0.99", cs.P99}} {
			w("fabricserve_class_latency_seconds{class=%q,quantile=%q} %s\n", name, q.p, fsec(q.v.D()))
		}
		agg := s.classes[name]
		var cum uint64
		agg.hist.EachBucket(func(_, hi time.Duration, count uint64) {
			cum += count
			w("fabricserve_class_latency_bucket{class=%q,le=%q} %d\n", name, fsec(hi), cum)
		})
		w("fabricserve_class_latency_bucket{class=%q,le=\"+Inf\"} %d\n", name, cum)
	}

	// Per-flow quantiles for completed probe flows still resident in the
	// bounded list; dropped flows survive only in their class series.
	for _, fl := range s.flows {
		if !fl.done || fl.stream != nil || fl.hist.Count() == 0 {
			continue
		}
		w("fabricserve_flow_latency_seconds{flow=\"%d:%s\",class=%q,quantile=\"0.5\"} %s\n",
			fl.id, fl.label, fl.class, fsec(fl.hist.Percentile(50)))
		w("fabricserve_flow_latency_seconds{flow=\"%d:%s\",class=%q,quantile=\"0.99\"} %s\n",
			fl.id, fl.label, fl.class, fsec(fl.hist.Percentile(99)))
	}
	if s.flowsDropped > 0 {
		w("fabricserve_flows_dropped_total %d\n", s.flowsDropped)
	}
	return b.String()
}

// fsec formats a duration as seconds with nanosecond precision and no
// trailing zeros beyond what the value needs.
func fsec(d time.Duration) string {
	s := fmt.Sprintf("%.9f", d.Seconds())
	s = strings.TrimRight(s, "0")
	if strings.HasSuffix(s, ".") {
		s += "0"
	}
	return s
}
