package serve

// The daemon's wire protocol and session op-log format.
//
// Wire: one JSON object per line in both directions (NDJSON). Requests
// decode strictly — an unknown field or op name is an error response, not
// a silent default. Entity references are names (the stable sorted names
// scenario.Index exposes); the daemon translates them into the scenario
// engine's index-based FaultOps, so the op-log stores exactly the
// vocabulary the batch sweep replays and shrinks.
//
// Op-log: line 1 is a header carrying the fully-defaulted Spec and the
// virtual-time quantum; every subsequent line is one applied op with the
// virtual boundary it was applied at. Fault ops are stored in the shared
// scenario codec (internal/scenario/ops.go); workload ops in the named
// forms below. Replay rebuilds the fabric from the header and re-applies
// every entry at its recorded boundary — the trace fingerprint must come
// out byte-identical at any shard count.

import (
	"fmt"
	"time"

	"repro/pkg/fabric"

	"repro/internal/scenario"
)

// Request is one client line. Op selects the action; the other fields are
// its parameters (named entities, counts, durations). Unused fields must
// be absent or zero.
//
// Ops:
//
//	workload: ping, stream, burst, matrix
//	fault:    link-down, link-up, flap, set-loss, clear-loss,
//	          bridge-restart, host-move, host-return, partition, heal
//	control:  info, stats, metrics, drain, shutdown
type Request struct {
	Op string `json:"op"`

	// Workload parameters.
	Src      string          `json:"src,omitempty"`
	Dst      string          `json:"dst,omitempty"`
	Class    string          `json:"class,omitempty"` // latency class: "priority" or "background"
	Count    int             `json:"count,omitempty"`
	Size     int             `json:"size,omitempty"`
	Interval fabric.Duration `json:"interval,omitempty"`
	Timeout  fabric.Duration `json:"timeout,omitempty"`
	Bytes    int             `json:"bytes,omitempty"`
	Payload  int             `json:"payload,omitempty"`
	Flows    int             `json:"flows,omitempty"`

	// Fault parameters.
	Link   string          `json:"link,omitempty"`
	Bridge string          `json:"bridge,omitempty"`
	Host   string          `json:"host,omitempty"`
	Side   int             `json:"side,omitempty"`
	Rate   float64         `json:"rate,omitempty"`
	For    fabric.Duration `json:"for,omitempty"` // self-heal horizon: flap/set-loss/host-move/partition
	Seed   int64           `json:"seed,omitempty"`
}

// Response is one daemon line. OK distinguishes accepted from rejected;
// accepted mutating ops carry the session sequence number and the virtual
// boundary they were applied at.
type Response struct {
	OK    bool            `json:"ok"`
	Seq   uint64          `json:"seq,omitempty"`
	At    fabric.Duration `json:"at,omitempty"`
	Error string          `json:"error,omitempty"`

	Info    *Info  `json:"info,omitempty"`
	Stats   *Stats `json:"stats,omitempty"`
	Metrics string `json:"metrics,omitempty"`
}

// Info describes the resident fabric: the entity names ops may reference.
type Info struct {
	Protocol string          `json:"protocol"`
	Shards   int             `json:"shards"`
	Quantum  fabric.Duration `json:"quantum"`
	Hosts    []string        `json:"hosts"`
	Links    []string        `json:"links"`
	Bridges  []string        `json:"bridges"`
	// Mobile lists the hosts with a pre-cabled spare jack — the only
	// legal host-move targets.
	Mobile []string `json:"mobile"`
}

// ClassStats summarizes one latency class's completed probes.
type ClassStats struct {
	Count uint64          `json:"count"`
	Lost  uint64          `json:"lost"`
	P50   fabric.Duration `json:"p50"`
	P90   fabric.Duration `json:"p90"`
	P99   fabric.Duration `json:"p99"`
	Max   fabric.Duration `json:"max"`
}

// Stats is the machine-readable live snapshot, taken with the fabric
// paused at a virtual-time boundary. Everything except WallSeconds is
// deterministic for a given op sequence.
type Stats struct {
	At          fabric.Duration `json:"at"`
	WallSeconds float64         `json:"wall_seconds"`

	Events         uint64 `json:"events"`
	Delivered      uint64 `json:"delivered"`
	DeliveredBytes uint64 `json:"delivered_bytes"`
	LiveFrames     int64  `json:"live_frames"`

	OpsApplied  uint64 `json:"ops_applied"`
	FlowsActive int    `json:"flows_active"`

	BurstOffered   int `json:"burst_offered"`
	BurstDelivered int `json:"burst_delivered"`

	TableEntries   int    `json:"table_entries"`
	TableEvictions uint64 `json:"table_evictions"`

	Windows   uint64 `json:"windows,omitempty"`
	Barriers  uint64 `json:"barriers,omitempty"`
	Exchanged uint64 `json:"exchanged,omitempty"`

	Classes map[string]ClassStats `json:"classes"`
}

// PingOp is the logged form of a ping workload op: a latency-classed
// probe train between two named hosts.
type PingOp struct {
	Src      string          `json:"src"`
	Dst      string          `json:"dst"`
	Count    int             `json:"count"`
	Size     int             `json:"size"`
	Interval fabric.Duration `json:"interval"`
	Timeout  fabric.Duration `json:"timeout"`
	Class    string          `json:"class"`
}

// StreamOp is the logged form of a stream workload op: a TCP-lite
// transfer between two named hosts.
type StreamOp struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Bytes int    `json:"bytes"`
}

// logHeader is the op-log's first line. Spec is fully defaulted, so a
// replay builds byte-for-byte the fabric the live session served (the
// shard count may be overridden — traces are shard-invariant).
type logHeader struct {
	Fabricserve int             `json:"fabricserve"`
	Spec        fabric.Spec     `json:"spec"`
	Quantum     fabric.Duration `json:"quantum"`
}

// logEntry is one applied op: the virtual boundary it was applied at, its
// session sequence number, and exactly one payload field. Fault ops are
// the scenario codec's wire form (indices into the Info name lists).
type logEntry struct {
	At  fabric.Duration `json:"at"`
	Seq uint64          `json:"seq"`

	Fault  []scenario.FaultOp `json:"fault,omitempty"`
	Ping   *PingOp            `json:"ping,omitempty"`
	Stream *StreamOp          `json:"stream,omitempty"`
	Heal   bool               `json:"heal,omitempty"`
	Drain  bool               `json:"drain,omitempty"`
}

// Workload defaults.
const (
	defaultPingCount    = 5
	defaultPingSize     = 56
	defaultPingInterval = 20 * time.Millisecond
	defaultPingTimeout  = time.Second
	defaultBurstCount   = 200
	defaultBurstSpacing = 10 * time.Microsecond
	defaultBurstPayload = 400
	defaultStreamBytes  = 64 << 10
	defaultMatrixFlows  = 4
	defaultFlapFor      = 50 * time.Millisecond
	defaultPartitionFor = 100 * time.Millisecond

	// ClassPriority and ClassBackground are the latency classes. Ping ops
	// default to background; the soak's SLO is asserted on priority.
	ClassPriority   = "priority"
	ClassBackground = "background"
)

// compilePing translates and defaults a ping request.
func (s *Server) compilePing(req Request) (*PingOp, error) {
	if req.Src == "" || req.Dst == "" {
		return nil, fmt.Errorf("ping requires src and dst")
	}
	if req.Src == req.Dst {
		return nil, fmt.Errorf("ping src and dst are both %q", req.Src)
	}
	if _, ok := s.index.HostIndex(req.Src); !ok {
		return nil, fmt.Errorf("unknown host %q", req.Src)
	}
	if _, ok := s.index.HostIndex(req.Dst); !ok {
		return nil, fmt.Errorf("unknown host %q", req.Dst)
	}
	p := &PingOp{
		Src: req.Src, Dst: req.Dst,
		Count: req.Count, Size: req.Size,
		Interval: req.Interval, Timeout: req.Timeout,
		Class: req.Class,
	}
	if p.Count == 0 {
		p.Count = defaultPingCount
	}
	if p.Size == 0 {
		p.Size = defaultPingSize
	}
	if p.Interval == 0 {
		p.Interval = fabric.Duration(defaultPingInterval)
	}
	if p.Timeout == 0 {
		p.Timeout = fabric.Duration(defaultPingTimeout)
	}
	if p.Class == "" {
		p.Class = ClassBackground
	}
	if p.Count < 1 || p.Count > 1000 {
		return nil, fmt.Errorf("ping count %d outside [1,1000]", p.Count)
	}
	if p.Size < 0 || p.Size > 1400 {
		return nil, fmt.Errorf("ping size %d outside [0,1400]", p.Size)
	}
	if p.Interval.D() <= 0 || p.Timeout.D() <= 0 {
		return nil, fmt.Errorf("ping interval and timeout must be positive")
	}
	return p, nil
}

// compileStream translates and defaults a stream request.
func (s *Server) compileStream(req Request) (*StreamOp, error) {
	if req.Src == "" || req.Dst == "" {
		return nil, fmt.Errorf("stream requires src and dst")
	}
	if req.Src == req.Dst {
		return nil, fmt.Errorf("stream src and dst are both %q", req.Src)
	}
	if _, ok := s.index.HostIndex(req.Src); !ok {
		return nil, fmt.Errorf("unknown host %q", req.Src)
	}
	if _, ok := s.index.HostIndex(req.Dst); !ok {
		return nil, fmt.Errorf("unknown host %q", req.Dst)
	}
	st := &StreamOp{Src: req.Src, Dst: req.Dst, Bytes: req.Bytes}
	if st.Bytes == 0 {
		st.Bytes = defaultStreamBytes
	}
	if st.Bytes < 1 || st.Bytes > 64<<20 {
		return nil, fmt.Errorf("stream bytes %d outside [1,64MiB]", st.Bytes)
	}
	return st, nil
}

// compileFault translates a fault-family request into scenario ops. One
// request may expand to several ops (a flap is down+up, a partition is a
// whole cut); the expansion — not the request — is what the op-log
// stores, so replay never re-derives a cut or a port assignment.
func (s *Server) compileFault(req Request) ([]scenario.FaultOp, error) {
	link := func() (int, error) {
		if req.Link == "" {
			return 0, fmt.Errorf("%s requires a link name", req.Op)
		}
		li, ok := s.index.LinkIndex(req.Link)
		if !ok {
			return 0, fmt.Errorf("unknown link %q", req.Link)
		}
		return li, nil
	}
	hostIx := func(name, what string) (int, error) {
		if name == "" {
			return 0, fmt.Errorf("%s requires %s", req.Op, what)
		}
		hi, ok := s.index.HostIndex(name)
		if !ok {
			return 0, fmt.Errorf("unknown host %q", name)
		}
		return hi, nil
	}
	burst := func(src, dst int, count int, interval, payload int) scenario.FaultOp {
		if count == 0 {
			count = defaultBurstCount
		}
		if interval == 0 {
			interval = int(defaultBurstSpacing)
		}
		if payload == 0 {
			payload = defaultBurstPayload
		}
		s.burstPort++
		return scenario.FaultOp{
			Kind: scenario.OpBurst, Src: src, Dst: dst, Port: s.burstPort,
			Count: count, Interval: time.Duration(interval), Payload: payload,
		}
	}

	var ops []scenario.FaultOp
	switch req.Op {
	case "link-down", "link-up":
		li, err := link()
		if err != nil {
			return nil, err
		}
		kind := scenario.OpLinkDown
		if req.Op == "link-up" {
			kind = scenario.OpLinkUp
		}
		ops = []scenario.FaultOp{{Kind: kind, Link: li}}
	case "flap":
		li, err := link()
		if err != nil {
			return nil, err
		}
		d := req.For.D()
		if d == 0 {
			d = defaultFlapFor
		}
		ops = []scenario.FaultOp{
			{Kind: scenario.OpLinkDown, Link: li},
			{At: d, Kind: scenario.OpLinkUp, Link: li},
		}
	case "set-loss":
		li, err := link()
		if err != nil {
			return nil, err
		}
		ops = []scenario.FaultOp{{Kind: scenario.OpSetLoss, Link: li, Side: req.Side, Rate: req.Rate}}
		if d := req.For.D(); d > 0 {
			ops = append(ops, scenario.FaultOp{At: d, Kind: scenario.OpClearLoss, Link: li, Side: req.Side})
		}
	case "clear-loss":
		li, err := link()
		if err != nil {
			return nil, err
		}
		ops = []scenario.FaultOp{{Kind: scenario.OpClearLoss, Link: li, Side: req.Side}}
	case "bridge-restart":
		if req.Bridge == "" {
			return nil, fmt.Errorf("bridge-restart requires a bridge name")
		}
		bi, ok := s.index.BridgeIndex(req.Bridge)
		if !ok {
			return nil, fmt.Errorf("unknown bridge %q", req.Bridge)
		}
		ops = []scenario.FaultOp{{Kind: scenario.OpBridgeRestart, Bridge: bi}}
	case "host-move":
		hi, err := hostIx(req.Host, "a host name")
		if err != nil {
			return nil, err
		}
		ops = []scenario.FaultOp{{Kind: scenario.OpHostMove, Host: hi}}
		if d := req.For.D(); d > 0 {
			ops = append(ops, scenario.FaultOp{At: d, Kind: scenario.OpHostReturn, Host: hi})
		}
	case "host-return":
		hi, err := hostIx(req.Host, "a host name")
		if err != nil {
			return nil, err
		}
		ops = []scenario.FaultOp{{Kind: scenario.OpHostReturn, Host: hi}}
	case "partition":
		cut := s.index.PartitionCut(req.Seed)
		if len(cut) == 0 {
			return nil, fmt.Errorf("partition: the bridge graph yields no cut")
		}
		d := req.For.D()
		if d == 0 {
			d = defaultPartitionFor
		}
		for _, li := range cut {
			ops = append(ops,
				scenario.FaultOp{Kind: scenario.OpLinkDown, Link: li},
				scenario.FaultOp{At: d, Kind: scenario.OpLinkUp, Link: li})
		}
	case "burst":
		si, err := hostIx(req.Src, "src")
		if err != nil {
			return nil, err
		}
		di, err := hostIx(req.Dst, "dst")
		if err != nil {
			return nil, err
		}
		ops = []scenario.FaultOp{burst(si, di, req.Count, int(req.Interval.D()), req.Payload)}
	case "matrix":
		// A seeded burst matrix: Flows random host pairs, every burst with
		// the request's sizing. The expansion is logged, so the matrix a
		// replay drives is the one that ran, whatever this derivation does.
		hosts := s.index.Hosts()
		if len(hosts) < 2 {
			return nil, fmt.Errorf("matrix requires at least two hosts")
		}
		flows := req.Flows
		if flows == 0 {
			flows = defaultMatrixFlows
		}
		if flows < 1 || flows > 256 {
			return nil, fmt.Errorf("matrix flows %d outside [1,256]", flows)
		}
		rng := newSeededRand(req.Seed)
		for i := 0; i < flows; i++ {
			src := rng.Intn(len(hosts))
			dst := rng.Intn(len(hosts))
			if dst == src {
				dst = (dst + 1) % len(hosts)
			}
			ops = append(ops, burst(src, dst, req.Count, int(req.Interval.D()), req.Payload))
		}
	default:
		return nil, fmt.Errorf("unknown op %q", req.Op)
	}
	for _, op := range ops {
		if err := s.index.Validate(op); err != nil {
			return nil, err
		}
	}
	return ops, nil
}
