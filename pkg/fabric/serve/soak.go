package serve

// The soak client: seeded churn against a live daemon, with a hard
// latency assertion at the end. It drives priority ping trains through a
// storm of background bursts, streams and self-healing faults, then
// drains the fabric and asserts the priority class's p99 against its SLO.
// Every op self-heals (flaps, loss windows, partitions and host moves all
// carry a horizon), so the storm never leaves the fabric degenerate; a
// final heal covers whatever a shrunk run would have left dangling.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/pkg/fabric"
)

// SoakConfig drives Soak.
type SoakConfig struct {
	// Network and Addr name the daemon endpoint ("unix", "/path") or
	// ("tcp", "host:port").
	Network string
	Addr    string
	// Seed makes the churn reproducible client-side.
	Seed int64
	// Duration is how much virtual time the soak spans.
	Duration time.Duration
	// MinRounds floors the churn: an unpaced daemon free-runs virtual
	// time between ops, so the duration alone could be met in a handful
	// of rounds (default 12).
	MinRounds int
	// SLO is the priority-class p99 ceiling asserted at the end.
	SLO time.Duration
	// DialTimeout bounds the initial connect retry loop.
	DialTimeout time.Duration
	// Out receives the soak summary.
	Out io.Writer
}

// SoakResult is the outcome of a soak run.
type SoakResult struct {
	Rounds   int
	Ops      uint64
	Virtual  time.Duration
	Priority ClassStats
	Stats    *Stats
}

type client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

func dialRetry(network, addr string, timeout time.Duration) (*client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout) //fabriclint:wallclock dial-retry budget for reaching a live daemon; not simulation time
	var lastErr error
	for {
		conn, err := net.DialTimeout(network, addr, time.Second)
		if err == nil {
			c := &client{conn: conn, sc: bufio.NewScanner(conn), enc: json.NewEncoder(conn)}
			c.sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) { //fabriclint:wallclock dial-retry budget check; not simulation time
			return nil, fmt.Errorf("serve: dial %s %s: %w", network, addr, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (c *client) close() { c.conn.Close() }

// call sends one request and reads its response; a transport failure or
// an error response both fail the call.
func (c *client) call(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("serve: send %s: %w", req.Op, err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("serve: read %s reply: %w", req.Op, err)
		}
		return Response{}, fmt.Errorf("serve: connection closed awaiting %s reply", req.Op)
	}
	var resp Response
	dec := json.NewDecoder(bytes.NewReader(c.sc.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("serve: decode %s reply: %w", req.Op, err)
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("serve: %s rejected: %s", req.Op, resp.Error)
	}
	return resp, nil
}

// Soak connects to a live daemon, drives seeded churn for cfg.Duration of
// virtual time, then drains the fabric, asserts the priority-class p99
// SLO and shuts the daemon down. The returned error is non-nil on any
// rejected op, a violated SLO, or a priority class with no samples.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 20 * time.Millisecond
	}
	if cfg.MinRounds <= 0 {
		cfg.MinRounds = 12
	}
	c, err := dialRetry(cfg.Network, cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer c.close()

	infoResp, err := c.call(Request{Op: "info"})
	if err != nil {
		return nil, err
	}
	info := infoResp.Info
	if info == nil || len(info.Hosts) < 2 {
		return nil, fmt.Errorf("serve: soak needs at least two hosts, daemon reports %v", info)
	}
	start := infoResp.At.D()
	end := start + cfg.Duration

	rng := newSeededRand(cfg.Seed)
	pick2 := func() (string, string) {
		i := rng.Intn(len(info.Hosts))
		j := rng.Intn(len(info.Hosts) - 1)
		if j >= i {
			j++
		}
		return info.Hosts[i], info.Hosts[j]
	}
	dur := func(d time.Duration) fabric.Duration { return fabric.Duration(d) }

	res := &SoakResult{}
	var at time.Duration
	send := func(req Request) error {
		resp, err := c.call(req)
		if err != nil {
			return err
		}
		if resp.At.D() > at {
			at = resp.At.D()
		}
		res.Ops++
		return nil
	}

	for at < end || res.Rounds < cfg.MinRounds {
		res.Rounds++
		// The SLO subject: a short priority train between a random pair.
		src, dst := pick2()
		if err := send(Request{Op: "ping", Src: src, Dst: dst, Class: ClassPriority,
			Count: 3, Interval: dur(5 * time.Millisecond)}); err != nil {
			return res, err
		}
		// Background load: bursts every round, heavier shapes periodically.
		bsrc, bdst := pick2()
		if err := send(Request{Op: "burst", Src: bsrc, Dst: bdst, Count: 100}); err != nil {
			return res, err
		}
		switch res.Rounds % 4 {
		case 1:
			if err := send(Request{Op: "matrix", Seed: rng.Int63(), Flows: 3, Count: 50}); err != nil {
				return res, err
			}
		case 3:
			ssrc, sdst := pick2()
			if err := send(Request{Op: "stream", Src: ssrc, Dst: sdst, Bytes: 32 << 10}); err != nil {
				return res, err
			}
		}
		// Background pings keep both classes populated.
		gsrc, gdst := pick2()
		if err := send(Request{Op: "ping", Src: gsrc, Dst: gdst, Class: ClassBackground,
			Count: 2, Interval: dur(7 * time.Millisecond)}); err != nil {
			return res, err
		}
		// The fault storm: one self-healing fault per round.
		var fault Request
		switch rng.Intn(5) {
		case 0:
			fault = Request{Op: "flap", Link: info.Links[rng.Intn(len(info.Links))],
				For: dur(30 * time.Millisecond)}
		case 1:
			fault = Request{Op: "set-loss", Link: info.Links[rng.Intn(len(info.Links))],
				Side: rng.Intn(2), Rate: 0.2, For: dur(40 * time.Millisecond)}
		case 2:
			fault = Request{Op: "bridge-restart", Bridge: info.Bridges[rng.Intn(len(info.Bridges))]}
		case 3:
			fault = Request{Op: "partition", Seed: rng.Int63(), For: dur(50 * time.Millisecond)}
		case 4:
			if len(info.Mobile) > 0 {
				fault = Request{Op: "host-move", Host: info.Mobile[rng.Intn(len(info.Mobile))],
					For: dur(60 * time.Millisecond)}
			} else {
				fault = Request{Op: "flap", Link: info.Links[rng.Intn(len(info.Links))],
					For: dur(30 * time.Millisecond)}
			}
		}
		if err := send(fault); err != nil {
			return res, err
		}
	}

	// Settle: return every fault to service, drain in-flight traffic.
	if err := send(Request{Op: "heal"}); err != nil {
		return res, err
	}
	if err := send(Request{Op: "drain"}); err != nil {
		return res, err
	}
	statsResp, err := c.call(Request{Op: "stats"})
	if err != nil {
		return res, err
	}
	res.Stats = statsResp.Stats
	res.Virtual = statsResp.At.D() - start
	if _, err := c.call(Request{Op: "shutdown"}); err != nil {
		return res, err
	}

	pri, ok := res.Stats.Classes[ClassPriority]
	res.Priority = pri
	fmt.Fprintf(out, "soak: rounds=%d ops=%d virtual=%v live_frames=%d\n",
		res.Rounds, res.Ops, res.Virtual, res.Stats.LiveFrames)
	fmt.Fprintf(out, "soak: priority n=%d lost=%d p50=%v p99=%v max=%v (slo p99<=%v)\n",
		pri.Count, pri.Lost, pri.P50.D(), pri.P99.D(), pri.Max.D(), cfg.SLO)
	if !ok || pri.Count == 0 {
		return res, fmt.Errorf("serve: soak recorded no priority samples")
	}
	if pri.P99.D() > cfg.SLO {
		return res, fmt.Errorf("serve: priority p99 %v violates SLO %v", pri.P99.D(), cfg.SLO)
	}
	if res.Stats.LiveFrames != 0 {
		return res, fmt.Errorf("serve: %d frames still live after drain", res.Stats.LiveFrames)
	}
	fmt.Fprintf(out, "soak: SLO met\n")
	return res, nil
}
