// Package serve is the fabric's live traffic-serving daemon: it keeps a
// sharded fabric resident and applies streamed workload and fault ops at
// quantized virtual-time boundaries, instead of compiling a whole run
// up-front the way the batch Runner does.
//
// The determinism contract survives streaming because of one rule: ops
// mutate the fabric only from driver context, at a boundary the simulation
// was advanced to by a bounded RunFor slice. The wall-clock order in which
// clients' requests arrive picks WHICH boundary an op lands on — that much
// is non-deterministic, it is live traffic — but once accepted, the pair
// (virtual boundary, op) is appended to the session op-log, and replaying
// the log re-applies every op at its recorded boundary. Because a sliced
// run equals an unbounded run over the same interval (DESIGN.md §8; pinned
// by the slice-boundary tests), the replay's trace fingerprint is
// byte-identical to the live session's — at any shard count.
//
// A Server owns its fabric exclusively and runs every simulation step from
// one goroutine; connection handlers only enqueue decoded requests.
// Completion callbacks (ping trains, streams) fire on shard workers
// mid-window, so they write exclusively into their own flow's state; the
// serving loop folds finished flows into the per-class histograms at
// boundaries, where the window join has already established
// happens-before. Like the Runner, at most one Server may be live per
// process (it hooks topo.OnBuilt to attach its trace taps).
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/pkg/fabric"

	"repro/internal/core"
	"repro/internal/flowpath"
	"repro/internal/host"
	"repro/internal/host/app"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// DefaultQuantum is the virtual-time grid ops are applied on: the serving
// loop advances the fabric in RunFor slices of this length, and every
// accepted op lands exactly on a slice boundary.
const DefaultQuantum = 10 * time.Millisecond

// maxFlows bounds the retained per-flow stat list; beyond it the oldest
// folded flows are dropped (their samples live on in the class
// histograms).
const maxFlows = 512

// Options configures a Server.
type Options struct {
	// Spec is the fabric to serve. An empty topology family defaults to
	// figure2, mirroring the batch runner.
	Spec fabric.Spec
	// Quantum is the op-application grid (DefaultQuantum when zero).
	Quantum time.Duration
	// OpLog, when non-nil, receives the session op-log: a header line
	// with the defaulted Spec, then one line per accepted op.
	OpLog io.Writer
	// Out receives the human-readable session report at shutdown.
	Out io.Writer
	// Pace slows the serving loop to at most Pace seconds of virtual
	// time per wall second (0 = run flat out). A live daemon typically
	// wants 1.0 so latency classes mean what a client expects.
	Pace float64
}

// Report is the machine-checkable outcome of a session, live or replayed.
type Report struct {
	Virtual        time.Duration
	Ops            uint64
	Events         uint64
	Fingerprint    uint64
	Delivered      uint64
	DeliveredBytes uint64
	LeakedFrames   int64
	BurstOffered   int
	BurstDelivered int
	StreamsDone    int
	StreamsOK      int
	TableEntries   int
	TableEvictions uint64
	Classes        map[string]ClassStats
	// Text is the rendered report; its trailing lines ("leaked frames",
	// "trace fingerprint") are stable grep targets for CI.
	Text string
}

// flow is one workload op's completion state. The done callback — which
// runs on a shard worker mid-window — writes only these fields, and only
// before setting done; the serving loop reads them at boundaries, after
// the window join established happens-before.
type flow struct {
	id     int
	label  string
	class  string
	hist   *metrics.Histogram
	lost   uint64
	stream *app.StreamReport
	done   bool
	folded bool
}

// classAgg accumulates one latency class across folded flows.
type classAgg struct {
	hist *metrics.Histogram
	lost uint64
}

type request struct {
	req  Request
	resp chan Response
}

// Server keeps a fabric resident and serves streamed ops against it.
type Server struct {
	spec    fabric.Spec
	quantum time.Duration
	pace    float64
	out     io.Writer

	built *fabric.Built
	index *scenario.Index
	fp    *netsim.TapFingerprint

	// Written by the trace tap, read from driver context.
	delivered      uint64
	deliveredBytes uint64

	opLog    *bufio.Writer
	opLogErr error

	seq        uint64
	burstPort  uint16
	streamPort uint16
	opCounts   map[string]uint64

	flows        []*flow
	flowsDropped int
	nextFlowID   int
	classes      map[string]*classAgg
	sinks        []*app.Sink
	burstOffered int
	streamsDone  int
	streamsOK    int

	reqCh    chan *request
	doneCh   chan struct{}
	stopping bool

	wallStart time.Time
	virtStart time.Duration

	report *Report
}

// newServer builds the fabric and the serving state without starting the
// loop; New starts the live loop, Replay drives the same state inline.
func newServer(o Options) (*Server, error) {
	spec := o.Spec
	if spec.Topology.Family == "" {
		spec.Topology.Family = "figure2"
	}
	spec, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	quantum := o.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	if quantum < 0 {
		return nil, fmt.Errorf("serve: negative quantum %v", quantum)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	s := &Server{
		spec:       spec,
		quantum:    quantum,
		pace:       o.Pace,
		out:        o.Out,
		fp:         netsim.NewTapFingerprint(),
		burstPort:  7000,
		streamPort: 8000,
		opCounts:   map[string]uint64{},
		classes:    map[string]*classAgg{},
		reqCh:      make(chan *request, 64),
		doneCh:     make(chan struct{}),
		wallStart:  time.Now(), //fabriclint:wallclock uptime reporting in status replies; the fabric runs on virtual time
	}
	if s.out == nil {
		s.out = io.Discard
	}
	// Attach the trace taps before any bridge starts, so the fingerprint
	// covers the warm-up exactly as the batch Runner's does.
	prev := topo.OnBuilt
	topo.OnBuilt = func(n *topo.Net) {
		n.Tap(s.fp.Observe)
		n.Tap(func(ev netsim.TapEvent) {
			if ev.Kind == netsim.TapDeliver {
				s.delivered++
				s.deliveredBytes += uint64(len(ev.Frame))
			}
		})
	}
	built, err := fabric.BuildTopology(opts, spec.Topology)
	topo.OnBuilt = prev
	if err != nil {
		return nil, err
	}
	s.built = built
	s.index = scenario.NewIndex(built)
	s.virtStart = built.Now()
	if o.OpLog != nil {
		s.opLog = bufio.NewWriter(o.OpLog)
		hdr, err := json.Marshal(logHeader{Fabricserve: 1, Spec: spec, Quantum: fabric.Duration(quantum)})
		if err != nil {
			return nil, err
		}
		if _, err := s.opLog.Write(append(hdr, '\n')); err != nil {
			return nil, fmt.Errorf("serve: op-log: %w", err)
		}
		if err := s.opLog.Flush(); err != nil {
			return nil, fmt.Errorf("serve: op-log: %w", err)
		}
	}
	return s, nil
}

// New builds the fabric (including warm-up) and starts the serving loop.
func New(o Options) (*Server, error) {
	s, err := newServer(o)
	if err != nil {
		return nil, err
	}
	//fabriclint:nondeterministic single serving loop owns the engine; requests are serialized through reqCh
	go s.loop()
	return s, nil
}

// Serve accepts connections until the server shuts down. Each connection
// carries newline-delimited JSON requests answered in order. On shutdown
// it waits for the connection handlers to flush their final replies
// (bounded by the teardown deadline) before returning, so a caller may
// exit as soon as Serve does.
func (s *Server) Serve(ln net.Listener) error {
	//fabriclint:nondeterministic unblocks Accept on shutdown; never touches the engine
	go func() {
		<-s.doneCh
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.doneCh:
				return nil
			default:
				return err
			}
		}
		wg.Add(1)
		//fabriclint:nondeterministic per-connection reader; ops reach the engine only via the serialized reqCh
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Shutdown asks the serving loop to drain and stop; Wait blocks for it.
func (s *Server) Shutdown() { s.do(Request{Op: "shutdown"}) }

// Wait blocks until the session finished and returns its report.
func (s *Server) Wait() *Report {
	<-s.doneCh
	return s.report
}

// MetricsHandler serves the text exposition of the live session metrics.
// Rendering is a request to the serving loop, so the snapshot is taken at
// a boundary with the fabric paused.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		resp := s.do(Request{Op: "metrics"})
		if resp.Error != "" {
			http.Error(w, resp.Error, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, resp.Metrics)
	})
}

// do enqueues one request and waits for its response.
func (s *Server) do(req Request) Response {
	r := &request{req: req, resp: make(chan Response, 1)}
	select {
	case s.reqCh <- r:
	case <-s.doneCh:
		return Response{Error: "server shut down"}
	}
	select {
	case resp := <-r.resp:
		return resp
	case <-s.doneCh:
		// The loop may have answered and exited before this select ran;
		// prefer the delivered response over the shutdown race.
		select {
		case resp := <-r.resp:
			return resp
		default:
			return Response{Error: "server shut down"}
		}
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	//fabriclint:nondeterministic connection teardown watchdog; no engine access
	go func() {
		select {
		case <-s.doneCh:
			// Kick the blocked scanner with a deadline rather than an
			// immediate close, so an in-flight reply (the shutdown ack)
			// still flushes before the deferred close tears down.
			conn.SetDeadline(time.Now().Add(200 * time.Millisecond)) //fabriclint:wallclock socket teardown deadline; I/O plumbing, not simulation time
		case <-connDone:
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var resp Response
		var req Request
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else if dec.More() {
			resp = Response{Error: "bad request: trailing data after the op object"}
		} else {
			resp = s.do(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// loop is the single goroutine that touches the fabric: it gathers
// queued requests, applies them at the current boundary, then advances
// one quantum. When the fabric is quiescent and no request is queued it
// parks on the channel instead of spinning through empty windows.
func (s *Server) loop() {
	defer close(s.doneCh)
	for !s.stopping {
		for _, r := range s.gather() {
			if s.stopping {
				r.resp <- Response{Error: "server shutting down"}
				continue
			}
			s.handle(r)
		}
		if s.stopping {
			break
		}
		if !s.built.Quiescent() {
			s.built.RunFor(s.quantum)
			s.paceSleep()
		}
		s.foldFlows()
	}
	s.finish()
}

// gather drains every queued request; with nothing queued and nothing
// scheduled it blocks until the next request arrives.
func (s *Server) gather() []*request {
	var reqs []*request
	for {
		select {
		case r := <-s.reqCh:
			reqs = append(reqs, r)
		default:
			if len(reqs) > 0 || !s.built.Quiescent() {
				return reqs
			}
			reqs = append(reqs, <-s.reqCh)
		}
	}
}

func (s *Server) paceSleep() {
	if s.pace <= 0 {
		return
	}
	virt := s.built.Now() - s.virtStart
	target := time.Duration(float64(virt) / s.pace)
	if ahead := target - time.Since(s.wallStart); ahead > 0 {
		if ahead > 100*time.Millisecond {
			ahead = 100 * time.Millisecond
		}
		time.Sleep(ahead)
	}
}

// handle answers one request at the current boundary. Read-only ops never
// touch the op-log; mutating ops are compiled, applied, logged, then
// acknowledged with their sequence number and boundary.
func (s *Server) handle(r *request) {
	now := fabric.Duration(s.built.Now())
	switch r.req.Op {
	case "info":
		r.resp <- Response{OK: true, At: now, Info: s.info()}
		return
	case "stats":
		r.resp <- Response{OK: true, At: now, Stats: s.stats()}
		return
	case "metrics":
		r.resp <- Response{OK: true, At: now, Metrics: s.renderMetrics()}
		return
	case "shutdown":
		s.stopping = true
		r.resp <- Response{OK: true, Seq: s.seq, At: now}
		return
	}
	entry, err := s.compile(r.req)
	if err == nil {
		entry.At = now
		err = s.applyEntry(entry)
	}
	if err != nil {
		r.resp <- Response{Error: err.Error()}
		return
	}
	s.seq++
	entry.Seq = s.seq
	s.opCounts[r.req.Op]++
	s.logAppend(entry)
	r.resp <- Response{OK: true, Seq: s.seq, At: fabric.Duration(s.built.Now())}
}

// compile translates a wire request into the log-entry form applyEntry
// executes. Validation happens here and in applyEntry's resolution — all
// of it before any fabric mutation, so a rejected op leaves no trace.
func (s *Server) compile(req Request) (*logEntry, error) {
	e := &logEntry{}
	switch req.Op {
	case "ping":
		p, err := s.compilePing(req)
		if err != nil {
			return nil, err
		}
		e.Ping = p
	case "stream":
		st, err := s.compileStream(req)
		if err != nil {
			return nil, err
		}
		e.Stream = st
	case "heal":
		e.Heal = true
	case "drain":
		e.Drain = true
	default:
		ops, err := s.compileFault(req)
		if err != nil {
			return nil, err
		}
		e.Fault = ops
	}
	return e, nil
}

// applyEntry executes one op at the current boundary. It is the shared
// execution path of live serving and replay: both feed it identical
// entries in identical order at identical virtual times, which is the
// whole replay-determinism argument.
func (s *Server) applyEntry(e *logEntry) error {
	at := s.built.Now()
	switch {
	case len(e.Fault) > 0:
		for _, op := range e.Fault {
			if err := s.index.Validate(op); err != nil {
				return err
			}
		}
		offered, sinks := s.index.Apply(e.Fault, at)
		s.burstOffered += offered
		s.sinks = append(s.sinks, sinks...)
	case e.Ping != nil:
		return s.applyPing(e.Ping)
	case e.Stream != nil:
		return s.applyStream(e.Stream)
	case e.Heal:
		s.index.Heal()
	case e.Drain:
		// Run to quiescence: re-anchors the boundary grid at the drain
		// time, which is why drains must be logged like any mutation.
		s.built.Run()
		s.foldFlows()
	default:
		return fmt.Errorf("empty op entry")
	}
	return nil
}

func (s *Server) newFlow(label, class string) *flow {
	s.nextFlowID++
	fl := &flow{
		id:    s.nextFlowID,
		label: label,
		class: class,
		hist:  metrics.NewHistogram(),
	}
	s.flows = append(s.flows, fl)
	return fl
}

func (s *Server) applyPing(p *PingOp) error {
	si, ok := s.index.HostIndex(p.Src)
	if !ok {
		return fmt.Errorf("unknown host %q", p.Src)
	}
	di, ok := s.index.HostIndex(p.Dst)
	if !ok {
		return fmt.Errorf("unknown host %q", p.Dst)
	}
	src := s.index.Host(si)
	ip := s.index.Host(di).IP()
	fl := s.newFlow(p.Src+">"+p.Dst, p.Class)
	count, size := p.Count, p.Size
	interval, timeout := p.Interval.D(), p.Timeout.D()
	s.built.Engine.At(s.built.Now(), func() {
		src.PingSeries(ip, count, size, interval, timeout, func(rs []host.PingResult) {
			for _, r := range rs {
				if r.Err == nil {
					fl.hist.Record(r.RTT)
				} else {
					fl.lost++
				}
			}
			fl.done = true
		})
	})
	return nil
}

func (s *Server) applyStream(st *StreamOp) error {
	si, ok := s.index.HostIndex(st.Src)
	if !ok {
		return fmt.Errorf("unknown host %q", st.Src)
	}
	di, ok := s.index.HostIndex(st.Dst)
	if !ok {
		return fmt.Errorf("unknown host %q", st.Dst)
	}
	server := s.index.Host(si)
	client := s.index.Host(di)
	fl := s.newFlow(st.Src+">"+st.Dst, "stream")
	cfg := app.DefaultStreamConfig()
	cfg.Size = st.Bytes
	s.streamPort++
	cfg.Port = s.streamPort
	s.built.Engine.At(s.built.Now(), func() {
		app.StartStream(server, client, cfg, func(r *app.StreamReport) {
			fl.stream = r
			fl.done = true
		})
	})
	return nil
}

// foldFlows merges every completed, unfolded flow into its class
// aggregate. Called only from driver context: flow completion happened in
// an already-joined window, and Merge is deterministic, so the class
// histograms are identical live and replayed. It then trims the per-flow
// list to its bound, dropping oldest folded flows first.
func (s *Server) foldFlows() {
	for _, fl := range s.flows {
		if fl.folded || !fl.done {
			continue
		}
		fl.folded = true
		if fl.stream != nil {
			s.streamsDone++
			if fl.stream.Complete {
				s.streamsOK++
			}
			continue
		}
		agg := s.classes[fl.class]
		if agg == nil {
			agg = &classAgg{hist: metrics.NewHistogram()}
			s.classes[fl.class] = agg
		}
		agg.hist.Merge(fl.hist)
		agg.lost += fl.lost
	}
	if len(s.flows) > maxFlows {
		excess := len(s.flows) - maxFlows
		kept := s.flows[:0]
		for _, fl := range s.flows {
			if excess > 0 && fl.folded {
				excess--
				s.flowsDropped++
				continue
			}
			kept = append(kept, fl)
		}
		s.flows = kept
	}
}

func (s *Server) logAppend(e *logEntry) {
	if s.opLog == nil || s.opLogErr != nil {
		return
	}
	b, err := json.Marshal(e)
	if err == nil {
		_, err = s.opLog.Write(append(b, '\n'))
	}
	if err == nil {
		err = s.opLog.Flush()
	}
	if err != nil {
		s.opLogErr = err
		fmt.Fprintf(s.out, "op-log write failed (logging disabled): %v\n", err)
	}
}

// finish drains the fabric and closes the session: every in-flight frame
// flows out through the LiveFrames gate, remaining flows fold, expired
// table and proxy state is swept, and the report — fingerprint included —
// is rendered. No report line depends on the shard count, so live and
// replayed reports diff clean whatever parallelism either ran at.
func (s *Server) finish() {
	s.built.Run()
	s.foldFlows()
	now := s.built.Now()
	entries, evictions := s.sweepTables(now)
	burstDelivered := 0
	for _, sk := range s.sinks {
		burstDelivered += sk.Count()
	}
	rep := &Report{
		Virtual:        now,
		Ops:            s.seq,
		Events:         s.fp.Events(),
		Fingerprint:    s.fp.Sum(),
		Delivered:      s.delivered,
		DeliveredBytes: s.deliveredBytes,
		LeakedFrames:   s.built.LiveFrames(),
		BurstOffered:   s.burstOffered,
		BurstDelivered: burstDelivered,
		StreamsDone:    s.streamsDone,
		StreamsOK:      s.streamsOK,
		TableEntries:   entries,
		TableEvictions: evictions,
		Classes:        s.classStats(),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fabricserve session: virtual=%v ops=%d\n", rep.Virtual, rep.Ops)
	for _, name := range sortedClassNames(rep.Classes) {
		cs := rep.Classes[name]
		fmt.Fprintf(&b, "class %s: n=%d lost=%d p50=%v p90=%v p99=%v max=%v\n",
			name, cs.Count, cs.Lost, cs.P50.D(), cs.P90.D(), cs.P99.D(), cs.Max.D())
	}
	if rep.StreamsDone > 0 {
		fmt.Fprintf(&b, "streams: done=%d complete=%d\n", rep.StreamsDone, rep.StreamsOK)
	}
	if rep.BurstOffered > 0 {
		fmt.Fprintf(&b, "bursts: offered=%d delivered=%d\n", rep.BurstOffered, rep.BurstDelivered)
	}
	fmt.Fprintf(&b, "tables after sweep: entries=%d evictions=%d\n", rep.TableEntries, rep.TableEvictions)
	fmt.Fprintf(&b, "leaked frames: %d\n", rep.LeakedFrames)
	fmt.Fprintf(&b, "trace fingerprint: %#016x (events=%d)\n", rep.Fingerprint, rep.Events)
	rep.Text = b.String()
	io.WriteString(s.out, rep.Text)
	s.report = rep
}

func sortedClassNames(m map[string]ClassStats) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Server) classStats() map[string]ClassStats {
	out := make(map[string]ClassStats, len(s.classes))
	for name, agg := range s.classes {
		cs := ClassStats{Count: agg.hist.Count(), Lost: agg.lost}
		if cs.Count > 0 {
			cs.P50 = fabric.Duration(agg.hist.Percentile(50))
			cs.P90 = fabric.Duration(agg.hist.Percentile(90))
			cs.P99 = fabric.Duration(agg.hist.Percentile(99))
			cs.Max = fabric.Duration(agg.hist.Max())
		}
		out[name] = cs
	}
	return out
}

// sweepTables eagerly expires dead table and proxy state on every bridge
// at now — the session-end corpse sweep — and reports what stayed
// resident.
func (s *Server) sweepTables(now time.Duration) (entries int, evictions uint64) {
	for _, br := range s.built.Bridges {
		switch b := br.(type) {
		case *flowpath.TCPPath:
			b.Table().FlushExpired(now)
			b.SweepProxy(now)
			b.Conns().FlushExpired(now)
			entries += b.ForwardingEntries()
			evictions += b.Table().Evictions() + b.Conns().Evictions()
		case *flowpath.Bridge:
			b.Pairs().FlushExpired(now)
			b.Hosts().FlushExpired(now)
			entries += b.ForwardingEntries()
			evictions += b.Pairs().Evictions() + b.Hosts().Evictions()
		case *core.Bridge:
			b.Table().FlushExpired(now)
			b.SweepProxy(now)
			entries += b.Table().Len()
			evictions += b.Table().Evictions()
		default:
			if fe, ok := br.(interface{ ForwardingEntries() int }); ok {
				entries += fe.ForwardingEntries()
			}
		}
	}
	return entries, evictions
}

// tableStats reads resident table state without sweeping (the live
// stats/metrics view).
func (s *Server) tableStats() (entries int, evictions uint64) {
	for _, br := range s.built.Bridges {
		switch b := br.(type) {
		case *flowpath.TCPPath:
			entries += b.ForwardingEntries()
			evictions += b.Table().Evictions() + b.Conns().Evictions()
		case *flowpath.Bridge:
			entries += b.ForwardingEntries()
			evictions += b.Pairs().Evictions() + b.Hosts().Evictions()
		case *core.Bridge:
			entries += b.Table().Len()
			evictions += b.Table().Evictions()
		default:
			if fe, ok := br.(interface{ ForwardingEntries() int }); ok {
				entries += fe.ForwardingEntries()
			}
		}
	}
	return entries, evictions
}

func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Replay re-executes a session op-log against a freshly built fabric,
// applying every entry at its recorded virtual boundary. shards > 0
// overrides the header's shard count — the fingerprint must not change.
func Replay(r io.Reader, shards int, out io.Writer) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("serve: empty op-log")
	}
	var hdr logHeader
	dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("serve: op-log header: %w", err)
	}
	if hdr.Fabricserve != 1 {
		return nil, fmt.Errorf("serve: unsupported op-log version %d", hdr.Fabricserve)
	}
	spec := hdr.Spec
	if shards > 0 {
		spec.Shards = shards
	}
	s, err := newServer(Options{Spec: spec, Quantum: hdr.Quantum.D(), Out: out})
	if err != nil {
		return nil, err
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e logEntry
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("serve: op-log line %d: %w", lineNo, err)
		}
		at := e.At.D()
		now := s.built.Now()
		if at < now {
			return nil, fmt.Errorf("serve: op-log line %d: time moves backwards (%v < %v)", lineNo, at, now)
		}
		if at > now {
			s.built.RunUntil(at)
		}
		if err := s.applyEntry(&e); err != nil {
			return nil, fmt.Errorf("serve: op-log line %d: %w", lineNo, err)
		}
		s.seq = e.Seq
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.finish()
	return s.report, nil
}
