package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/pkg/fabric"
)

// soakSpec is the live-session fixture: a seeded random mesh with spare
// jacks so every fault kind — host moves included — is in play.
func soakSpec(shards int) fabric.Spec {
	return fabric.Spec{
		Seed:     11,
		Shards:   shards,
		Topology: fabric.TopologySpec{Family: "erdos-renyi", N: 10, P: 0.3, SpareJacks: true},
	}
}

// TestServeLiveReplayFingerprint is the tentpole invariant: a live
// session driven over a real socket by the seeded soak client — priority
// pings under bursts, streams and a fault storm — logs every accepted op,
// and replaying the log reproduces the live trace fingerprint (and the
// whole session report) at shard counts 1, 2 and 4.
func TestServeLiveReplayFingerprint(t *testing.T) {
	var opLog bytes.Buffer
	srv, err := New(Options{
		Spec:    soakSpec(2),
		Quantum: 5 * time.Millisecond,
		OpLog:   &opLog,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)

	res, err := Soak(SoakConfig{
		Network:  "tcp",
		Addr:     ln.Addr().String(),
		Seed:     42,
		Duration: 250 * time.Millisecond,
		SLO:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if res.Priority.Count == 0 {
		t.Fatal("soak recorded no priority probes")
	}
	live := srv.Wait()
	if live == nil {
		t.Fatal("no live report")
	}
	if live.LeakedFrames != 0 {
		t.Fatalf("live session leaked %d frames", live.LeakedFrames)
	}
	if live.Ops == 0 || live.Events == 0 {
		t.Fatalf("degenerate live session: ops=%d events=%d", live.Ops, live.Events)
	}
	if live.BurstOffered == 0 || live.BurstDelivered == 0 {
		t.Fatalf("soak drove no burst traffic: offered=%d delivered=%d", live.BurstOffered, live.BurstDelivered)
	}

	for _, shards := range []int{1, 2, 4} {
		rep, err := Replay(bytes.NewReader(opLog.Bytes()), shards, io.Discard)
		if err != nil {
			t.Fatalf("replay shards=%d: %v", shards, err)
		}
		if rep.Fingerprint != live.Fingerprint || rep.Events != live.Events {
			t.Fatalf("replay shards=%d fingerprint %#016x (%d events) != live %#016x (%d events)",
				shards, rep.Fingerprint, rep.Events, live.Fingerprint, live.Events)
		}
		// The whole rendered report — classes, streams, bursts, tables,
		// leaks — must reproduce, not just the fingerprint.
		if rep.Text != live.Text {
			t.Fatalf("replay shards=%d report differs from live:\n--- live ---\n%s--- replay ---\n%s",
				shards, live.Text, rep.Text)
		}
	}
}

// testClient is a minimal raw NDJSON client for protocol-level tests.
type testClient struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &testClient{t: t, conn: conn, sc: sc}
}

// raw sends one raw line and decodes the reply loosely (the reply shape
// itself is pinned elsewhere; these tests care about OK/Error).
func (c *testClient) raw(line string) Response {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		c.t.Fatalf("send: %v", err)
	}
	if !c.sc.Scan() {
		c.t.Fatalf("no reply to %s (err=%v)", line, c.sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.t.Fatalf("bad reply %q: %v", c.sc.Bytes(), err)
	}
	return resp
}

func (c *testClient) expectErr(line, substr string) {
	c.t.Helper()
	resp := c.raw(line)
	if resp.OK || resp.Error == "" {
		c.t.Fatalf("request %s succeeded, want error containing %q", line, substr)
	}
	if !strings.Contains(resp.Error, substr) {
		c.t.Fatalf("request %s failed with %q, want substring %q", line, resp.Error, substr)
	}
}

// TestServeWireStrict pins the trust boundary: unknown fields, unknown
// ops, unresolvable names and illegal ops are rejected with an error
// response — and none of them consume a sequence number or reach the
// op-log.
func TestServeWireStrict(t *testing.T) {
	var opLog bytes.Buffer
	// No spare jacks: host moves must be rejected as illegal here.
	srv, err := New(Options{
		Spec:  fabric.Spec{Seed: 3, Topology: fabric.TopologySpec{Family: "ring", N: 4}},
		OpLog: &opLog,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	c := dialTest(t, ln.Addr().String())

	info := c.raw(`{"op":"info"}`)
	if !info.OK || info.Info == nil || len(info.Info.Hosts) < 2 {
		t.Fatalf("info failed: %+v", info)
	}
	h0, h1 := info.Info.Hosts[0], info.Info.Hosts[1]
	if len(info.Info.Mobile) != 0 {
		t.Fatalf("ring without spare jacks reports mobile hosts %v", info.Info.Mobile)
	}

	c.expectErr(`{"op":"bogus"}`, "unknown op")
	c.expectErr(`{"op":"ping","sources":"x"}`, "bad request")
	c.expectErr(fmt.Sprintf(`{"op":"ping","src":"nope","dst":%q}`, h1), "unknown host")
	c.expectErr(fmt.Sprintf(`{"op":"ping","src":%q,"dst":%q}`, h0, h0), "src and dst are both")
	c.expectErr(`{"op":"flap","link":"nope"}`, "unknown link")
	c.expectErr(fmt.Sprintf(`{"op":"host-move","host":%q}`, h0), "spare jack")
	c.expectErr(fmt.Sprintf(`{"op":"ping","src":%q,"dst":%q,"count":100000}`, h0, h1), "outside")
	c.expectErr(`{"op":"ping","src":"a","dst":"b"} trailing`, "bad request")

	// A rejected op consumes nothing: the first accepted op is seq 1.
	ok := c.raw(fmt.Sprintf(`{"op":"ping","src":%q,"dst":%q,"class":"priority"}`, h0, h1))
	if !ok.OK || ok.Seq != 1 {
		t.Fatalf("first accepted op got seq %d (resp %+v), want 1", ok.Seq, ok)
	}
	if resp := c.raw(`{"op":"drain"}`); !resp.OK {
		t.Fatalf("drain failed: %+v", resp)
	}
	stats := c.raw(`{"op":"stats"}`)
	if !stats.OK || stats.Stats == nil {
		t.Fatalf("stats failed: %+v", stats)
	}
	if stats.Stats.LiveFrames != 0 {
		t.Fatalf("%d frames live after drain", stats.Stats.LiveFrames)
	}
	if pri := stats.Stats.Classes[ClassPriority]; pri.Count == 0 {
		t.Fatalf("priority class empty after drained ping: %+v", stats.Stats.Classes)
	}
	metricsResp := c.raw(`{"op":"metrics"}`)
	if !metricsResp.OK || !strings.Contains(metricsResp.Metrics, "fabricserve_class_latency_seconds") {
		t.Fatalf("metrics exposition missing class series:\n%s", metricsResp.Metrics)
	}
	if !c.raw(`{"op":"shutdown"}`).OK {
		t.Fatal("shutdown rejected")
	}
	rep := srv.Wait()
	if rep.Ops != 2 {
		t.Fatalf("session logged %d ops, want 2 (rejects must not log)", rep.Ops)
	}
	// Exactly header + two entries in the log.
	lines := bytes.Count(bytes.TrimSpace(opLog.Bytes()), []byte("\n")) + 1
	if lines != 3 {
		t.Fatalf("op-log has %d lines, want 3 (header + 2 ops)", lines)
	}
}

// TestReplayRejectsGarbage pins op-log strictness: empty logs, bad
// versions, unknown fields and time regressions all fail loudly instead
// of replaying something other than what ran.
func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader(""), 0, io.Discard); err == nil {
		t.Fatal("empty op-log replayed")
	}
	if _, err := Replay(strings.NewReader(`{"fabricserve":9,"spec":{},"quantum":"10ms"}`+"\n"), 0, io.Discard); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted (err=%v)", err)
	}
	header := `{"fabricserve":1,"spec":{"topology":{"family":"ring","n":3}},"quantum":"10ms"}`
	if _, err := Replay(strings.NewReader(header+"\n"+`{"at":"5ms","seq":1,"zap":true}`+"\n"), 0, io.Discard); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("unknown entry field accepted (err=%v)", err)
	}
	backwards := header + "\n" +
		`{"at":"20ms","seq":1,"heal":true}` + "\n" +
		`{"at":"5ms","seq":2,"heal":true}` + "\n"
	if _, err := Replay(strings.NewReader(backwards), 0, io.Discard); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("time regression accepted (err=%v)", err)
	}
	// A sound minimal log replays, and the report is shard-stable.
	sound := header + "\n" + `{"at":"100ms","seq":1,"heal":true}` + "\n"
	rep1, err := Replay(strings.NewReader(sound), 1, io.Discard)
	if err != nil {
		t.Fatalf("minimal log: %v", err)
	}
	rep2, err := Replay(strings.NewReader(sound), 2, io.Discard)
	if err != nil {
		t.Fatalf("minimal log shards=2: %v", err)
	}
	if rep1.Fingerprint != rep2.Fingerprint || rep1.Text != rep2.Text {
		t.Fatal("minimal log replays differently at shards 1 vs 2")
	}
}
